//! Decoding machine words back to inspectable Rust values.

use rml_runtime::{Heap, ObjKind, Word};

/// A decoded run-time value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunValue {
    /// Integer.
    Int(i64),
    /// Boolean.
    Bool(bool),
    /// Unit.
    Unit,
    /// String.
    Str(String),
    /// List.
    List(Vec<RunValue>),
    /// Pair.
    Pair(Box<RunValue>, Box<RunValue>),
    /// A function value.
    Closure,
    /// A reference cell (contents decoded).
    Ref(Box<RunValue>),
    /// An exception value.
    Exn(String),
    /// A value that could not be decoded (dangling or corrupt).
    Opaque,
}

impl std::fmt::Display for RunValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunValue::Int(n) => write!(f, "{n}"),
            RunValue::Bool(b) => write!(f, "{b}"),
            RunValue::Unit => write!(f, "()"),
            RunValue::Str(s) => write!(f, "{s:?}"),
            RunValue::List(xs) => {
                write!(f, "[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            RunValue::Pair(a, b) => write!(f, "({a}, {b})"),
            RunValue::Closure => write!(f, "fn"),
            RunValue::Ref(v) => write!(f, "ref {v}"),
            RunValue::Exn(n) => write!(f, "exn {n}"),
            RunValue::Opaque => write!(f, "<opaque>"),
        }
    }
}

/// Structures nested deeper than this decode to [`RunValue::Opaque`]:
/// protects against cyclic reference graphs (a `ref` that reaches itself)
/// and pathological nesting blowing the Rust stack.
const MAX_DEPTH: usize = 512;

/// Decodes a word (deeply) against the heap.
pub fn decode(heap: &Heap, w: Word) -> RunValue {
    decode_at(heap, w, 0)
}

fn decode_at(heap: &Heap, w: Word, depth: usize) -> RunValue {
    if depth > MAX_DEPTH {
        return RunValue::Opaque;
    }
    if w.is_int() {
        return RunValue::Int(w.as_int());
    }
    if let Some(b) = w.as_bool() {
        return RunValue::Bool(b);
    }
    if w == Word::UNIT {
        return RunValue::Unit;
    }
    if w == Word::NIL {
        return RunValue::List(Vec::new());
    }
    let Ok(h) = heap.header(w, "decode") else {
        return RunValue::Opaque;
    };
    match h.kind {
        ObjKind::Str => heap
            .read_str(w, "decode")
            .map(RunValue::Str)
            .unwrap_or(RunValue::Opaque),
        ObjKind::Pair => {
            let a = heap
                .field(w, 0, "decode")
                .map(|x| decode_at(heap, x, depth + 1));
            let b = heap
                .field(w, 1, "decode")
                .map(|x| decode_at(heap, x, depth + 1));
            match (a, b) {
                (Ok(a), Ok(b)) => RunValue::Pair(Box::new(a), Box::new(b)),
                _ => RunValue::Opaque,
            }
        }
        ObjKind::Cons => {
            let mut items = Vec::new();
            let mut cur = w;
            loop {
                if cur == Word::NIL {
                    return RunValue::List(items);
                }
                // A cyclic spine (made with `ref` tricks) must terminate
                // too, not just deep element nesting.
                if items.len() > (1 << 24) {
                    return RunValue::Opaque;
                }
                let Ok(h) = heap.field(cur, 0, "decode") else {
                    return RunValue::Opaque;
                };
                items.push(decode_at(heap, h, depth + 1));
                match heap.field(cur, 1, "decode") {
                    Ok(t) => cur = t,
                    Err(_) => return RunValue::Opaque,
                }
            }
        }
        ObjKind::Ref => heap
            .field(w, 0, "decode")
            .map(|x| RunValue::Ref(Box::new(decode_at(heap, x, depth + 1))))
            .unwrap_or(RunValue::Opaque),
        ObjKind::Closure => RunValue::Closure,
        ObjKind::Exn => {
            // The name index is a raw heap word: resolve it fallibly so a
            // corrupted heap decodes to something printable, not a panic.
            let name = heap
                .field(w, 0, "decode")
                .ok()
                .and_then(|x| u32::try_from(x.0).ok())
                .and_then(rml_syntax::Symbol::lookup_index)
                .unwrap_or("<unknown>");
            RunValue::Exn(name.to_string())
        }
        ObjKind::Forward => RunValue::Opaque,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rml_runtime::{Heap, RegionKind};

    #[test]
    fn immediates_decode() {
        let h = Heap::new();
        assert_eq!(decode(&h, Word::int(-7)), RunValue::Int(-7));
        assert_eq!(decode(&h, Word::TRUE), RunValue::Bool(true));
        assert_eq!(decode(&h, Word::UNIT), RunValue::Unit);
        assert_eq!(decode(&h, Word::NIL), RunValue::List(vec![]));
    }

    #[test]
    fn structures_decode_deeply() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let s = h.alloc_str(r, "hi");
        let cons = h.alloc(r, ObjKind::Cons, 0, &[Word::int(1).0, Word::NIL.0]);
        let pair = h.alloc(r, ObjKind::Pair, 0, &[s.0, cons.0]);
        assert_eq!(
            decode(&h, pair),
            RunValue::Pair(
                Box::new(RunValue::Str("hi".into())),
                Box::new(RunValue::List(vec![RunValue::Int(1)]))
            )
        );
    }

    #[test]
    fn dangling_decodes_to_opaque() {
        let mut h = Heap::new();
        let r = h.create_region(RegionKind::Infinite);
        let s = h.alloc_str(r, "gone");
        h.drop_region(r);
        assert_eq!(decode(&h, s), RunValue::Opaque);
    }

    #[test]
    fn display_forms() {
        assert_eq!(RunValue::Int(3).to_string(), "3");
        assert_eq!(
            RunValue::List(vec![RunValue::Int(1), RunValue::Int(2)]).to_string(),
            "[1, 2]"
        );
        assert_eq!(
            RunValue::Pair(Box::new(RunValue::Unit), Box::new(RunValue::Bool(false))).to_string(),
            "((), false)"
        );
        assert_eq!(RunValue::Str("a\"b".into()).to_string(), "\"a\\\"b\"");
    }
}
