//! The machine proper.

use crate::code::{CodeEntry, CodeId, CodeTable};
use crate::decode::RunValue;
use rml_core::terms::Term;
use rml_core::vars::RegVar;
use rml_runtime::{GcError, GcPause, Heap, ObjKind, RegionId, RegionKind, UniformKind, Word};
use rml_session::trace;
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;
use std::cell::Cell;
use std::collections::HashSet;
use std::rc::Rc;

/// A linked environment node (values live in `Cell`s so the collector can
/// update them in place).
struct EnvNode {
    name: Symbol,
    val: Cell<u64>,
    next: Env,
}

type Env = Option<Rc<EnvNode>>;

fn env_bind(env: &Env, name: Symbol, val: Word) -> Env {
    Some(Rc::new(EnvNode {
        name,
        val: Cell::new(val.0),
        next: env.clone(),
    }))
}

fn env_lookup(env: &Env, name: Symbol) -> Option<Word> {
    let mut cur = env;
    while let Some(n) = cur {
        if n.name == name {
            return Some(Word(n.val.get()));
        }
        cur = &n.next;
    }
    None
}

/// Region environment (no collector interaction).
struct REnvNode {
    var: RegVar,
    region: RegionId,
    next: REnv,
}

type REnv = Option<Rc<REnvNode>>;

fn renv_bind(renv: &REnv, var: RegVar, region: RegionId) -> REnv {
    Some(Rc::new(REnvNode {
        var,
        region,
        next: renv.clone(),
    }))
}

fn renv_lookup(renv: &REnv, var: RegVar) -> Option<RegionId> {
    let mut cur = renv;
    while let Some(n) = cur {
        if n.var == var {
            return Some(n.region);
        }
        cur = &n.next;
    }
    None
}

/// A deterministic adversarial collection schedule (the torture rig).
///
/// All scheduling decisions derive from the machine step counter, the
/// allocation counter, and a [`Xorshift64`] stream seeded from `seed` —
/// never from ambient randomness — so the same seed always produces the
/// same schedule and therefore the same run outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StressSchedule {
    /// Force a collection every `period` machine steps (0 disables the
    /// step trigger; 1 collects at *every* step).
    pub period: u64,
    /// Force a collection after every allocation.
    pub every_alloc: bool,
    /// Seed for the minor/major interleaving stream.
    pub seed: u64,
    /// Interleave minor (young-generation) and major collections,
    /// chosen by the seeded PRNG.
    pub generational: bool,
}

/// Collection policy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum GcPolicy {
    /// No tracing collection (strategy `r`).
    Off,
    /// Collect when allocation since the last collection exceeds
    /// `max(min_bytes, ratio × live)`.
    On {
        /// Minimum allocation between collections.
        min_bytes: u64,
        /// Heap-growth ratio.
        ratio: f64,
        /// Use the generational (minor/major) scheme.
        generational: bool,
    },
    /// Adversarial deterministic schedule (collect far more often than
    /// any heuristic would, to surface latent dangling pointers at the
    /// earliest step that makes them reachable).
    Stress(StressSchedule),
}

impl GcPolicy {
    /// The default tracing policy.
    pub fn default_on() -> GcPolicy {
        GcPolicy::On {
            min_bytes: 64 * 1024,
            ratio: 1.5,
            generational: false,
        }
    }

    /// Collect every `period` steps (deterministic; no PRNG involvement
    /// unless combined with [`StressSchedule::generational`]).
    pub fn stress_every(period: u64, seed: u64) -> GcPolicy {
        GcPolicy::Stress(StressSchedule {
            period,
            every_alloc: false,
            seed,
            generational: false,
        })
    }

    /// Collect at every machine step *and* after every allocation — the
    /// most adversarial schedule.
    pub fn stress_every_step(seed: u64) -> GcPolicy {
        GcPolicy::Stress(StressSchedule {
            period: 1,
            every_alloc: true,
            seed,
            generational: false,
        })
    }

    /// Like [`GcPolicy::stress_every`], but randomly (seeded) interleaves
    /// minor and major collections.
    pub fn stress_generational(period: u64, seed: u64) -> GcPolicy {
        GcPolicy::Stress(StressSchedule {
            period,
            every_alloc: false,
            seed,
            generational: true,
        })
    }

    /// Does the policy run the heap in generational mode?
    pub fn generational(&self) -> bool {
        match self {
            GcPolicy::Off => false,
            GcPolicy::On { generational, .. } => *generational,
            GcPolicy::Stress(s) => s.generational,
        }
    }
}

/// When the heap-invariant verifier walks the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// Never (production runs).
    #[default]
    Off,
    /// After every successful collection.
    AfterGc,
    /// After every machine step (torture runs; very slow).
    EveryStep,
}

/// Run options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// The global region variable (from `rml_infer::Output::global`).
    pub global: RegVar,
    /// Collection policy.
    pub gc: GcPolicy,
    /// Region variables whose regions the multiplicity analysis proved
    /// finite (never collected; from `rml-repr`).
    pub finite: HashSet<RegVar>,
    /// Region variables whose regions are kind-homogeneous and eligible
    /// for the untagged (header-less) representation (from `rml-repr`).
    pub uniform: std::collections::HashMap<RegVar, UniformKind>,
    /// Ignore all regions and run on one collected heap (the conventional
    /// tracing-GC baseline, standing in for MLton).
    pub baseline: bool,
    /// Step limit.
    pub fuel: u64,
    /// Fault injection: fail with [`RunError::OutOfMemory`] once this many
    /// objects have been allocated.
    pub alloc_budget: Option<u64>,
    /// Fault injection: fail with [`RunError::DepthLimit`] when the
    /// continuation stack exceeds this many frames.
    pub depth_limit: Option<usize>,
    /// Heap-invariant verification cadence.
    pub verify: VerifyLevel,
    /// Static multiplicity bounds for finite region variables (from
    /// `rml-repr`); enforced by the heap verifier.
    pub finite_bounds: std::collections::HashMap<RegVar, u64>,
}

impl RunOpts {
    /// Default options with GC on.
    pub fn new(global: RegVar) -> RunOpts {
        RunOpts {
            global,
            gc: GcPolicy::default_on(),
            finite: HashSet::new(),
            uniform: Default::default(),
            baseline: false,
            fuel: u64::MAX,
            alloc_budget: None,
            depth_limit: None,
            verify: VerifyLevel::Off,
            finite_bounds: Default::default(),
        }
    }

    /// Baseline (regionless) options.
    pub fn baseline(global: RegVar) -> RunOpts {
        RunOpts {
            baseline: true,
            ..RunOpts::new(global)
        }
    }
}

/// A run error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RunError {
    /// Dangling pointer — dereferenced by the program or traced by the
    /// collector. The paper's unsoundness made concrete.
    Dangling(String),
    /// Uncaught exception.
    Uncaught(String),
    /// Step limit exhausted.
    OutOfFuel,
    /// Division by zero.
    DivByZero,
    /// Injected allocation budget exhausted (torture rig).
    OutOfMemory {
        /// Objects allocated when the budget tripped.
        allocs: u64,
    },
    /// Injected continuation-depth limit exceeded (torture rig).
    DepthLimit {
        /// Continuation frames when the limit tripped.
        depth: usize,
    },
    /// Heap invariant violated or heap corrupted — a runtime bug, located
    /// by the verifier or the collector.
    Invariant(String),
    /// Ill-formed program reached the machine (upstream bug).
    Stuck(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Dangling(m) => write!(f, "dangling pointer: {m}"),
            RunError::Uncaught(n) => write!(f, "uncaught exception {n}"),
            RunError::OutOfFuel => write!(f, "out of fuel"),
            RunError::DivByZero => write!(f, "division by zero"),
            RunError::OutOfMemory { allocs } => {
                write!(
                    f,
                    "out of memory: allocation budget exhausted after {allocs} objects"
                )
            }
            RunError::DepthLimit { depth } => {
                write!(f, "continuation depth limit exceeded at {depth} frames")
            }
            RunError::Invariant(m) => write!(f, "heap invariant violated: {m}"),
            RunError::Stuck(m) => write!(f, "stuck: {m}"),
        }
    }
}

impl std::error::Error for RunError {}

impl RunError {
    /// Converts the error into a structured `E0005` (runtime fault)
    /// diagnostic, so runtime failures render through the same path as
    /// compile-time errors.
    pub fn to_diagnostic(&self) -> rml_session::Diagnostic {
        let d = rml_session::Diagnostic::error("E0005", format!("runtime fault: {self}"));
        match self {
            RunError::Dangling(_) => d.with_note(
                "a dangling region pointer was dereferenced or traced; under \
                 strategy `rg` this would be a soundness bug — under `rg-` or \
                 `r` it is the unsoundness the paper's type system rules out",
            ),
            RunError::OutOfMemory { .. } => d.with_note(
                "injected allocation budget (torture rig); the machine unwound \
                 cleanly and can be re-run from a fresh heap",
            ),
            RunError::DepthLimit { .. } => d.with_note(
                "injected continuation-depth limit (torture rig); the machine \
                 unwound cleanly and can be re-run from a fresh heap",
            ),
            RunError::Invariant(_) => {
                d.with_note("this indicates a bug in the runtime, not in the program")
            }
            RunError::OutOfFuel => d.with_note("step budget exhausted (set by --fuel)"),
            _ => d,
        }
    }
}

/// The result of a run.
#[derive(Debug)]
pub struct RunOutcome {
    /// The program's value, decoded.
    pub value: RunValue,
    /// Accumulated `print` output.
    pub output: String,
    /// Machine steps taken.
    pub steps: u64,
    /// Heap statistics (allocation, collections, peak RSS).
    pub stats: rml_runtime::HeapStats,
    /// Per-collection pause records, in collection order.
    pub pauses: Vec<GcPause>,
}

enum Frame<'a> {
    AppArg {
        arg: &'a Term,
        env: Env,
        renv: REnv,
        /// For the fused `(f [S]) arg` form: the instantiation, resolved
        /// against the *caller's* region environment at call time, so no
        /// specialised closure is allocated per call.
        inst: Option<&'a rml_core::Subst>,
    },
    AppCall {
        clos: Cell<u64>,
        inst: Option<&'a rml_core::Subst>,
        renv: REnv,
    },
    RApp {
        inst: &'a rml_core::Subst,
        at: RegVar,
        renv: REnv,
    },
    LetBody {
        x: Symbol,
        body: &'a Term,
        env: Env,
        renv: REnv,
    },
    PairSnd {
        snd: &'a Term,
        env: Env,
        renv: REnv,
        at: RegVar,
    },
    PairMk {
        fst: Cell<u64>,
        at: RegVar,
        renv: REnv,
    },
    Sel(u8),
    IfBranch {
        t: &'a Term,
        f: &'a Term,
        env: Env,
        renv: REnv,
    },
    Prim {
        op: PrimOp,
        at: Option<RegVar>,
        renv: REnv,
        env: Env,
        done: Vec<Cell<u64>>,
        rest: Vec<&'a Term>, // reversed: next arg = rest.pop()
    },
    ConsTail {
        tail: &'a Term,
        env: Env,
        renv: REnv,
        at: RegVar,
    },
    ConsMk {
        head: Cell<u64>,
        at: RegVar,
        renv: REnv,
    },
    Case {
        nil_rhs: &'a Term,
        head: Symbol,
        tail: Symbol,
        cons_rhs: &'a Term,
        env: Env,
        renv: REnv,
    },
    RefMk {
        at: RegVar,
        renv: REnv,
    },
    Deref,
    AssignRhs {
        rhs: &'a Term,
        env: Env,
        renv: REnv,
    },
    AssignDo {
        target: Cell<u64>,
    },
    PopRegions {
        regions: Vec<RegionId>,
    },
    ExnMk {
        name: Symbol,
        at: RegVar,
        renv: REnv,
    },
    RaiseDo,
    Handle {
        exn: Symbol,
        arg: Symbol,
        handler: &'a Term,
        env: Env,
        renv: REnv,
    },
}

enum Ctrl<'a> {
    Eval(&'a Term, Env, REnv),
    Ret(Cell<u64>),
}

struct Machine<'a> {
    heap: Heap,
    code: CodeTable<'a>,
    kont: Vec<Frame<'a>>,
    output: String,
    steps: u64,
    opts: RunOpts,
    global_region: RegionId,
    gc_pending: bool,
    collections_since_major: u32,
    /// Seeded PRNG driving minor/major interleaving under stress
    /// schedules; the only source of "randomness" in the machine.
    rng: rml_runtime::Xorshift64,
    /// Allocation count at the last stress check (for the
    /// collect-after-every-allocation trigger).
    last_alloc_objects: u64,
}

type MResult<T> = Result<T, RunError>;

/// Runs a region-annotated program.
///
/// # Errors
///
/// See [`RunError`]; in particular [`RunError::Dangling`] reports a
/// dangling pointer met by the mutator or the collector.
pub fn run(term: &Term, opts: &RunOpts) -> Result<RunOutcome, RunError> {
    let code = CodeTable::build(term);
    let mut heap = Heap::new();
    heap.generational = opts.gc.generational();
    let global_region = heap.create_region(RegionKind::Infinite);
    let seed = match opts.gc {
        GcPolicy::Stress(s) => s.seed,
        _ => 0,
    };
    let mut m = Machine {
        heap,
        code,
        kont: Vec::new(),
        output: String::new(),
        steps: 0,
        opts: opts.clone(),
        global_region,
        gc_pending: false,
        collections_since_major: 0,
        rng: rml_runtime::Xorshift64::new(seed),
        last_alloc_objects: 0,
    };
    let mut renv = renv_bind(&None, opts.global, global_region);
    // Residual free region variables of the program (e.g. regions of the
    // final result value) live for the whole run, like the global region.
    let mut free = std::collections::BTreeSet::new();
    crate::code::free_rvars(term, &mut vec![opts.global], &mut free);
    for rv in free {
        let r = m.heap.create_region(RegionKind::Infinite);
        renv = renv_bind(&renv, rv, r);
    }
    let run_span = trace::span("machine.run", "eval");
    let value = m.run_loop(term, renv)?;
    drop(run_span);
    let value = crate::decode::decode(&m.heap, value);
    Ok(RunOutcome {
        value,
        output: m.output,
        steps: m.steps,
        stats: m.heap.stats,
        pauses: std::mem::take(&mut m.heap.pauses),
    })
}

impl<'a> Machine<'a> {
    fn region(&self, renv: &REnv, rv: RegVar) -> MResult<RegionId> {
        if self.opts.baseline {
            return Ok(self.global_region);
        }
        renv_lookup(renv, rv)
            .ok_or_else(|| RunError::Stuck(format!("unbound region variable {rv}")))
    }

    fn dangling<T>(&self, e: rml_runtime::heap::DanglingAccess) -> MResult<T> {
        // The step stamp makes the determinism contract checkable: the
        // same seed must reproduce the same failure at the same step.
        Err(RunError::Dangling(format!("{e} at step {}", self.steps)))
    }

    fn field(&self, w: Word, i: usize, ctx: &'static str) -> MResult<Word> {
        self.heap.field(w, i, ctx).or_else(|e| self.dangling(e))
    }

    fn run_loop(&mut self, term: &'a Term, renv: REnv) -> MResult<Word> {
        let mut ctrl = Ctrl::Eval(term, None, renv);
        loop {
            self.steps += 1;
            if self.steps > self.opts.fuel {
                return Err(RunError::OutOfFuel);
            }
            // Step-batch samples: one counter event per 4096 steps keeps
            // trace volume proportional to work without per-step cost.
            if self.steps & 0xFFF == 0 && trace::enabled() {
                trace::counter("machine.steps", self.steps as f64);
            }
            self.check_faults()?;
            self.maybe_collect(&ctrl)?;
            ctrl = match ctrl {
                Ctrl::Eval(e, env, renv) => self.eval(e, env, renv)?,
                Ctrl::Ret(w) => match self.kont.pop() {
                    None => return Ok(Word(w.get())),
                    Some(frame) => self.apply(frame, Word(w.get()))?,
                },
            };
        }
    }

    /// Injected faults: the allocation budget and the continuation-depth
    /// limit. Both unwind into structured errors (counted in the heap
    /// stats) rather than panicking, and leave the machine state
    /// consistent — a fresh `run` on the same program behaves as if the
    /// faulted run never happened.
    fn check_faults(&mut self) -> MResult<()> {
        if let Some(budget) = self.opts.alloc_budget {
            let allocs = self.heap.stats.objects_allocated;
            if allocs >= budget {
                self.heap.stats.faults_injected += 1;
                return Err(RunError::OutOfMemory { allocs });
            }
        }
        if let Some(limit) = self.opts.depth_limit {
            let depth = self.kont.len();
            if depth > limit {
                self.heap.stats.faults_injected += 1;
                return Err(RunError::DepthLimit { depth });
            }
        }
        Ok(())
    }

    /// Decides whether (and how) to collect this step. Returns
    /// `(minor, forced)` when a collection is due; `forced` marks
    /// collections demanded by a stress schedule or `forcegc` rather than
    /// the allocation heuristic.
    fn gc_decision(&mut self) -> Option<(bool, bool)> {
        match self.opts.gc {
            GcPolicy::Off => None,
            GcPolicy::On {
                min_bytes,
                ratio,
                generational,
            } => {
                let forced = self.gc_pending;
                if !forced && !self.heap.should_collect(min_bytes, ratio) {
                    return None;
                }
                let minor = generational && self.collections_since_major < 4;
                if minor {
                    self.collections_since_major += 1;
                } else {
                    self.collections_since_major = 0;
                }
                Some((minor, forced))
            }
            GcPolicy::Stress(s) => {
                let allocs = self.heap.stats.objects_allocated;
                let alloc_trigger = s.every_alloc && allocs > self.last_alloc_objects;
                self.last_alloc_objects = allocs;
                let step_trigger = s.period > 0 && self.steps.is_multiple_of(s.period);
                if !self.gc_pending && !alloc_trigger && !step_trigger {
                    return None;
                }
                // Minor three steps out of four, decided by the seeded
                // stream — deterministic for a given seed.
                let minor = s.generational && self.rng.chance(3, 4);
                Some((minor, true))
            }
        }
    }

    /// Gathers the machine's root set: the control value, frame cells,
    /// and environment chains. The returned cells stay valid while `ctrl`
    /// and `self.kont` are untouched.
    fn gather_roots(&self, ctrl: &Ctrl<'a>) -> Vec<*const Cell<u64>> {
        let mut cells: Vec<*const Cell<u64>> = Vec::new();
        let mut visited: HashSet<*const EnvNode> = HashSet::new();
        let mut envs: Vec<&Env> = Vec::new();
        if let Ctrl::Ret(w) = ctrl {
            cells.push(w as *const Cell<u64>);
        }
        if let Ctrl::Eval(_, env, _) = ctrl {
            envs.push(env);
        }
        for f in &self.kont {
            match f {
                Frame::AppArg { env, .. }
                | Frame::LetBody { env, .. }
                | Frame::PairSnd { env, .. }
                | Frame::IfBranch { env, .. }
                | Frame::ConsTail { env, .. }
                | Frame::Case { env, .. }
                | Frame::AssignRhs { env, .. }
                | Frame::Handle { env, .. } => envs.push(env),
                Frame::AppCall { clos, .. } => cells.push(clos as *const _),
                Frame::PairMk { fst, .. } => cells.push(fst as *const _),
                Frame::ConsMk { head, .. } => cells.push(head as *const _),
                Frame::AssignDo { target } => cells.push(target as *const _),
                Frame::Prim { done, env, .. } => {
                    envs.push(env);
                    for c in done {
                        cells.push(c as *const _);
                    }
                }
                _ => {}
            }
        }
        for env in envs {
            let mut cur = env;
            while let Some(n) = cur {
                if visited.insert(Rc::as_ptr(n)) {
                    cells.push(&n.val as *const _);
                    cur = &n.next;
                } else {
                    break;
                }
            }
        }
        cells
    }

    fn maybe_collect(&mut self, ctrl: &Ctrl<'a>) -> MResult<()> {
        let decision = self.gc_decision();
        let verify_now = match self.opts.verify {
            VerifyLevel::Off => false,
            VerifyLevel::AfterGc => decision.is_some(),
            VerifyLevel::EveryStep => true,
        };
        if decision.is_none() && !verify_now {
            return Ok(());
        }
        let cells = self.gather_roots(ctrl);
        // Two-phase: read all roots, collect, write back.
        let mut roots: Vec<Word> = cells.iter().map(|c| Word(unsafe { &**c }.get())).collect();
        if let Some((minor, forced)) = decision {
            self.gc_pending = false;
            if forced {
                self.heap.stats.forced_gcs += 1;
            }
            match self.heap.collect(&mut roots, minor) {
                Ok(()) => {}
                Err(GcError::DanglingPointer { context }) => {
                    return Err(RunError::Dangling(format!(
                        "garbage collector traced a pointer into a deallocated \
                         region ({context}) at step {}",
                        self.steps
                    )))
                }
                Err(e @ GcError::Corrupt { .. }) => return Err(RunError::Invariant(e.to_string())),
            }
            for (c, w) in cells.iter().zip(&roots) {
                unsafe { &**c }.set(w.0);
            }
        }
        if verify_now {
            match self.heap.verify(&roots) {
                Ok(_) => {}
                // A dangling reachable pointer found by the verifier is
                // the same GC-safety failure a collector trace would hit;
                // report it as such (the torture oracle relies on this).
                Err(e) if e.is_dangling() => {
                    return Err(RunError::Dangling(format!(
                        "{e} (heap verifier, step {})",
                        self.steps
                    )))
                }
                Err(e) => return Err(RunError::Invariant(e.to_string())),
            }
        }
        Ok(())
    }

    fn eval(&mut self, e: &'a Term, env: Env, renv: REnv) -> MResult<Ctrl<'a>> {
        let ret = |w: Word| Ok(Ctrl::Ret(Cell::new(w.0)));
        match e {
            Term::Unit => ret(Word::UNIT),
            Term::Int(n) => ret(Word::int(*n)),
            Term::Bool(b) => ret(Word::bool(*b)),
            Term::Nil(_) => ret(Word::NIL),
            Term::Var(x) => match env_lookup(&env, *x) {
                Some(w) => ret(w),
                None => Err(RunError::Stuck(format!("unbound variable `{x}`"))),
            },
            Term::Val(_) => Err(RunError::Stuck(
                "embedded values only occur in the formal semantics".into(),
            )),
            Term::Str(s, at) => {
                let r = self.region(&renv, *at)?;
                ret(self.heap.alloc_str(r, s))
            }
            Term::Lam { at, .. } => {
                let id = self.code.lam_ids[&(e as *const Term as usize)];
                let w = self.make_closure(id, &env, &renv, *at, None)?;
                ret(w)
            }
            Term::Fix { defs, ats, index } => {
                let key = Rc::as_ptr(defs) as usize;
                let members = self.code.fix_ids[&key].clone();
                // Allocate the whole group, then patch sibling slots.
                let mut words = Vec::new();
                for (i, id) in members.iter().enumerate() {
                    let w = self.make_closure(*id, &env, &renv, ats[i], Some(members.len()))?;
                    words.push(w);
                }
                for (i, w) in words.iter().enumerate() {
                    let raw = self.raw_len(members[i]);
                    for (j, sw) in words.iter().enumerate() {
                        self.heap
                            .set_field(*w, raw + j, *sw, "fix patch")
                            .or_else(|e| self.dangling(e))?;
                    }
                }
                ret(words[*index])
            }
            Term::App(f, a) => {
                // Fuse `(f [S]) arg`: pass the region instantiation at the
                // call instead of allocating a specialised closure (the
                // MLKit passes region arguments in registers).
                if let Term::RApp { f: inner, inst, .. } = f.as_ref() {
                    self.kont.push(Frame::AppArg {
                        arg: a,
                        env: env.clone(),
                        renv: renv.clone(),
                        inst: Some(inst),
                    });
                    return Ok(Ctrl::Eval(inner, env, renv));
                }
                self.kont.push(Frame::AppArg {
                    arg: a,
                    env: env.clone(),
                    renv: renv.clone(),
                    inst: None,
                });
                Ok(Ctrl::Eval(f, env, renv))
            }
            Term::RApp { f, inst, at } => {
                self.kont.push(Frame::RApp {
                    inst,
                    at: *at,
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(f, env, renv))
            }
            Term::Let { x, rhs, body } => {
                self.kont.push(Frame::LetBody {
                    x: *x,
                    body,
                    env: env.clone(),
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(rhs, env, renv))
            }
            Term::Letregion { rvars, body, .. } => {
                if self.opts.baseline {
                    return Ok(Ctrl::Eval(body, env, renv));
                }
                let mut renv2 = renv;
                let mut regions = Vec::new();
                for rv in rvars {
                    let kind = if self.opts.finite.contains(rv) {
                        RegionKind::Finite
                    } else {
                        RegionKind::Infinite
                    };
                    let uniform = self.opts.uniform.get(rv).copied();
                    let r = self.heap.create_region_uniform(kind, uniform);
                    if let Some(b) = self.opts.finite_bounds.get(rv) {
                        self.heap.set_region_bound(r, *b);
                    }
                    regions.push(r);
                    renv2 = renv_bind(&renv2, *rv, r);
                }
                if trace::enabled() {
                    trace::instant(
                        "letregion.enter",
                        "eval",
                        &[("regions", regions.len() as f64)],
                    );
                }
                self.kont.push(Frame::PopRegions { regions });
                Ok(Ctrl::Eval(body, env, renv2))
            }
            Term::Pair(a, b, at) => {
                self.kont.push(Frame::PairSnd {
                    snd: b,
                    env: env.clone(),
                    renv: renv.clone(),
                    at: *at,
                });
                Ok(Ctrl::Eval(a, env, renv))
            }
            Term::Sel(i, a) => {
                self.kont.push(Frame::Sel(*i));
                Ok(Ctrl::Eval(a, env, renv))
            }
            Term::If(c, t, f) => {
                self.kont.push(Frame::IfBranch {
                    t,
                    f,
                    env: env.clone(),
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(c, env, renv))
            }
            Term::Prim(op, args, at) => {
                let mut rest: Vec<&'a Term> = args.iter().collect();
                rest.reverse();
                match rest.pop() {
                    None => {
                        let w = self.apply_prim(*op, &[], *at, &renv)?;
                        ret(w)
                    }
                    Some(first) => {
                        self.kont.push(Frame::Prim {
                            op: *op,
                            at: *at,
                            renv: renv.clone(),
                            env: env.clone(),
                            done: Vec::new(),
                            rest,
                        });
                        Ok(Ctrl::Eval(first, env, renv))
                    }
                }
            }
            Term::Cons(h, t, at) => {
                self.kont.push(Frame::ConsTail {
                    tail: t,
                    env: env.clone(),
                    renv: renv.clone(),
                    at: *at,
                });
                Ok(Ctrl::Eval(h, env, renv))
            }
            Term::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                self.kont.push(Frame::Case {
                    nil_rhs,
                    head: *head,
                    tail: *tail,
                    cons_rhs,
                    env: env.clone(),
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(scrut, env, renv))
            }
            Term::RefNew(a, at) => {
                self.kont.push(Frame::RefMk {
                    at: *at,
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(a, env, renv))
            }
            Term::Deref(a) => {
                self.kont.push(Frame::Deref);
                Ok(Ctrl::Eval(a, env, renv))
            }
            Term::Assign(r, v) => {
                self.kont.push(Frame::AssignRhs {
                    rhs: v,
                    env: env.clone(),
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(r, env, renv))
            }
            Term::Exn { name, arg, at } => match arg {
                None => {
                    let r = self.region(&renv, *at)?;
                    let w = self
                        .heap
                        .alloc(r, ObjKind::Exn, 2, &[name.index() as u64, 0]);
                    ret(w)
                }
                Some(a) => {
                    self.kont.push(Frame::ExnMk {
                        name: *name,
                        at: *at,
                        renv: renv.clone(),
                    });
                    Ok(Ctrl::Eval(a, env, renv))
                }
            },
            Term::Raise(a, _) => {
                self.kont.push(Frame::RaiseDo);
                Ok(Ctrl::Eval(a, env, renv))
            }
            Term::Handle {
                body,
                exn,
                arg,
                handler,
            } => {
                self.kont.push(Frame::Handle {
                    exn: *exn,
                    arg: *arg,
                    handler,
                    env: env.clone(),
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(body, env, renv))
            }
        }
    }

    /// Number of raw payload words of a closure for `id` (code id, region
    /// slots).
    fn raw_len(&self, id: CodeId) -> usize {
        let e = &self.code.entries[id];
        1 + e.rparams.len() + e.frvs.len()
    }

    /// Allocates a closure for code `id` at region variable `at`:
    /// `[code_id][rparam slots (sentinel)][frv slots][siblings…][captures…]`.
    fn make_closure(
        &mut self,
        id: CodeId,
        env: &Env,
        renv: &REnv,
        at: RegVar,
        group_size: Option<usize>,
    ) -> MResult<Word> {
        let entry = &self.code.entries[id];
        let mut payload: Vec<u64> =
            Vec::with_capacity(1 + entry.rparams.len() + entry.frvs.len() + entry.fvs.len());
        payload.push(id as u64);
        for _ in &entry.rparams {
            payload.push(u64::MAX); // filled at region application
        }
        let frvs = entry.frvs.clone();
        let fvs = entry.fvs.clone();
        let raw = (1 + entry.rparams.len() + entry.frvs.len()) as u16;
        for rv in &frvs {
            let r = self.region(renv, *rv)?;
            payload.push(r.0 as u64);
        }
        for _ in 0..group_size.unwrap_or(0) {
            payload.push(Word::UNIT.0); // sibling slots, patched after
        }
        for v in &fvs {
            let w = env_lookup(env, *v)
                .ok_or_else(|| RunError::Stuck(format!("unbound capture `{v}`")))?;
            payload.push(w.0);
        }
        let r = self.region(renv, at)?;
        Ok(self.heap.alloc(r, ObjKind::Closure, raw, &payload))
    }

    /// Enters a closure with an argument. When `inst` is given (the fused
    /// `(f [S]) arg` form), the closure's region parameters are resolved
    /// from the instantiation against `caller_renv` instead of from the
    /// closure's slots.
    fn call(
        &mut self,
        clos: Word,
        arg: Word,
        inst: Option<&'a rml_core::Subst>,
        caller_renv: &REnv,
    ) -> MResult<Ctrl<'a>> {
        let id = self.field(clos, 0, "call")?.0 as usize;
        let entry: &CodeEntry<'a> = self
            .code
            .entries
            .get(id)
            .ok_or_else(|| RunError::Stuck("bad code id".into()))?;
        let body = entry.body;
        let param = entry.param;
        let rparams = entry.rparams.clone();
        let frvs = entry.frvs.clone();
        let fvs = entry.fvs.clone();
        let group = entry.group.clone();
        let raw = 1 + rparams.len() + frvs.len();
        // Region bindings.
        let mut renv: REnv = renv_bind(&None, self.opts.global, self.global_region);
        for (i, rv) in rparams.iter().enumerate() {
            let region = match inst {
                Some(s) => {
                    let target = s.reg.get(rv).copied().unwrap_or(*rv);
                    self.region(caller_renv, target)?
                }
                None => {
                    let raw_word = self.field_raw(clos, 1 + i)?;
                    if raw_word == u64::MAX {
                        return Err(RunError::Stuck(format!(
                            "closure applied without region instantiation ({rv})"
                        )));
                    }
                    RegionId(raw_word as u32)
                }
            };
            renv = renv_bind(&renv, *rv, region);
        }
        for (i, rv) in frvs.iter().enumerate() {
            let raw_word = self.field_raw(clos, 1 + rparams.len() + i)?;
            renv = renv_bind(&renv, *rv, RegionId(raw_word as u32));
        }
        // Value bindings: siblings then captures then the parameter.
        let mut env: Env = None;
        let nsib = group.as_ref().map(|g| g.members.len()).unwrap_or(0);
        if let Some(g) = &group {
            for (j, name) in g.names.iter().enumerate() {
                let w = self.field(clos, raw + j, "sibling")?;
                env = env_bind(&env, *name, w);
            }
        }
        for (i, v) in fvs.iter().enumerate() {
            let w = self.field(clos, raw + nsib + i, "capture")?;
            env = env_bind(&env, *v, w);
        }
        env = env_bind(&env, param, arg);
        Ok(Ctrl::Eval(body, env, renv))
    }

    fn field_raw(&self, w: Word, i: usize) -> MResult<u64> {
        self.heap
            .field(w, i, "closure raw field")
            .map(|x| x.0)
            .or_else(|e| self.dangling(e))
    }

    /// Region application: copy the closure, filling its region-parameter
    /// slots per the instantiation, at the target region.
    fn rapp(
        &mut self,
        clos: Word,
        inst: &rml_core::Subst,
        at: RegVar,
        renv: &REnv,
    ) -> MResult<Word> {
        let id = self.field(clos, 0, "region application")?.0 as usize;
        let entry = self
            .code
            .entries
            .get(id)
            .ok_or_else(|| RunError::Stuck("bad code id".into()))?;
        let rparams = entry.rparams.clone();
        let frvs_len = entry.frvs.len();
        let nsib = entry.group.as_ref().map(|g| g.members.len()).unwrap_or(0);
        let fvs_len = entry.fvs.len();
        let raw = 1 + rparams.len() + frvs_len;
        let total = raw + nsib + fvs_len;
        let mut payload = Vec::with_capacity(total);
        payload.push(id as u64);
        for rv in &rparams {
            let target = inst.reg.get(rv).copied().unwrap_or(*rv);
            // Identity instantiation resolves the variable itself (bound
            // in the current body's region environment).
            let r = self.region(renv, target)?;
            payload.push(r.0 as u64);
        }
        for i in 0..frvs_len + nsib + fvs_len {
            payload.push(self.field_raw(clos, 1 + rparams.len() + i)?);
        }
        let r = self.region(renv, at)?;
        Ok(self.heap.alloc(r, ObjKind::Closure, raw as u16, &payload))
    }

    fn apply(&mut self, frame: Frame<'a>, w: Word) -> MResult<Ctrl<'a>> {
        let ret = |w: Word| Ok(Ctrl::Ret(Cell::new(w.0)));
        match frame {
            Frame::AppArg {
                arg,
                env,
                renv,
                inst,
            } => {
                self.kont.push(Frame::AppCall {
                    clos: Cell::new(w.0),
                    inst,
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(arg, env, renv))
            }
            Frame::AppCall { clos, inst, renv } => self.call(Word(clos.get()), w, inst, &renv),
            Frame::RApp { inst, at, renv } => {
                let w2 = self.rapp(w, inst, at, &renv)?;
                ret(w2)
            }
            Frame::LetBody { x, body, env, renv } => {
                let env2 = env_bind(&env, x, w);
                Ok(Ctrl::Eval(body, env2, renv))
            }
            Frame::PairSnd { snd, env, renv, at } => {
                self.kont.push(Frame::PairMk {
                    fst: Cell::new(w.0),
                    at,
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(snd, env, renv))
            }
            Frame::PairMk { fst, at, renv } => {
                let r = self.region(&renv, at)?;
                ret(self.heap.alloc(r, ObjKind::Pair, 0, &[fst.get(), w.0]))
            }
            Frame::Sel(i) => {
                let v = self.field(w, (i - 1) as usize, "projection")?;
                ret(v)
            }
            Frame::IfBranch { t, f, env, renv } => match w.as_bool() {
                Some(true) => Ok(Ctrl::Eval(t, env, renv)),
                Some(false) => Ok(Ctrl::Eval(f, env, renv)),
                None => Err(RunError::Stuck("if on non-boolean".into())),
            },
            Frame::Prim {
                op,
                at,
                renv,
                env,
                mut done,
                mut rest,
            } => {
                done.push(Cell::new(w.0));
                match rest.pop() {
                    Some(next) => {
                        let renv2 = renv.clone();
                        self.kont.push(Frame::Prim {
                            op,
                            at,
                            renv,
                            env: env.clone(),
                            done,
                            rest,
                        });
                        Ok(Ctrl::Eval(next, env, renv2))
                    }
                    None => {
                        let args: Vec<Word> = done.iter().map(|c| Word(c.get())).collect();
                        let out = self.apply_prim(op, &args, at, &renv)?;
                        ret(out)
                    }
                }
            }
            Frame::ConsTail {
                tail,
                env,
                renv,
                at,
            } => {
                self.kont.push(Frame::ConsMk {
                    head: Cell::new(w.0),
                    at,
                    renv: renv.clone(),
                });
                Ok(Ctrl::Eval(tail, env, renv))
            }
            Frame::ConsMk { head, at, renv } => {
                let r = self.region(&renv, at)?;
                ret(self.heap.alloc(r, ObjKind::Cons, 0, &[head.get(), w.0]))
            }
            Frame::Case {
                nil_rhs,
                head,
                tail,
                cons_rhs,
                env,
                renv,
            } => {
                if w == Word::NIL {
                    Ok(Ctrl::Eval(nil_rhs, env, renv))
                } else {
                    let h = self.field(w, 0, "case head")?;
                    let t = self.field(w, 1, "case tail")?;
                    let env2 = env_bind(&env_bind(&env, head, h), tail, t);
                    Ok(Ctrl::Eval(cons_rhs, env2, renv))
                }
            }
            Frame::RefMk { at, renv } => {
                let r = self.region(&renv, at)?;
                ret(self.heap.alloc(r, ObjKind::Ref, 0, &[w.0]))
            }
            Frame::Deref => {
                let v = self.field(w, 0, "dereference")?;
                ret(v)
            }
            Frame::AssignRhs { rhs, env, renv } => {
                self.kont.push(Frame::AssignDo {
                    target: Cell::new(w.0),
                });
                Ok(Ctrl::Eval(rhs, env, renv))
            }
            Frame::AssignDo { target } => {
                self.heap
                    .set_field(Word(target.get()), 0, w, "assignment")
                    .or_else(|e| self.dangling(e))?;
                ret(Word::UNIT)
            }
            Frame::PopRegions { regions } => {
                if trace::enabled() {
                    trace::instant(
                        "letregion.exit",
                        "eval",
                        &[("regions", regions.len() as f64)],
                    );
                }
                for r in regions {
                    self.heap.drop_region(r);
                }
                ret(w)
            }
            Frame::ExnMk { name, at, renv } => {
                let r = self.region(&renv, at)?;
                ret(self
                    .heap
                    .alloc(r, ObjKind::Exn, 2, &[name.index() as u64, 0, w.0]))
            }
            Frame::RaiseDo => self.unwind(w),
            Frame::Handle { .. } => {
                // Body finished normally; drop the handler.
                ret(w)
            }
        }
    }

    /// Unwinds the continuation with a raised exception value.
    fn unwind(&mut self, exn_val: Word) -> MResult<Ctrl<'a>> {
        let name_idx = self.field_raw(exn_val, 0)? as u32;
        let name = Symbol::from_index(name_idx);
        while let Some(frame) = self.kont.pop() {
            match frame {
                Frame::PopRegions { regions } => {
                    for r in regions {
                        self.heap.drop_region(r);
                    }
                }
                Frame::Handle {
                    exn,
                    arg,
                    handler,
                    env,
                    renv,
                } if exn == name => {
                    let header = self
                        .heap
                        .header(exn_val, "exception match")
                        .or_else(|e| self.dangling(e))?;
                    let bound = if header.len > 2 {
                        self.field(exn_val, 2, "exception argument")?
                    } else {
                        Word::UNIT
                    };
                    let env2 = env_bind(&env, arg, bound);
                    return Ok(Ctrl::Eval(handler, env2, renv));
                }
                _ => {}
            }
        }
        let printable = Symbol::lookup_index(name_idx)
            .unwrap_or("<unknown exception>")
            .to_string();
        Err(RunError::Uncaught(printable))
    }

    fn apply_prim(
        &mut self,
        op: PrimOp,
        args: &[Word],
        at: Option<RegVar>,
        renv: &REnv,
    ) -> MResult<Word> {
        use PrimOp::*;
        let int = |w: Word| -> MResult<i64> {
            if w.is_int() {
                Ok(w.as_int())
            } else {
                Err(RunError::Stuck(format!("`{op}` on non-int")))
            }
        };
        Ok(match op {
            Add => Word::int(int(args[0])?.wrapping_add(int(args[1])?)),
            Sub => Word::int(int(args[0])?.wrapping_sub(int(args[1])?)),
            Mul => Word::int(int(args[0])?.wrapping_mul(int(args[1])?)),
            Div => {
                let d = int(args[1])?;
                if d == 0 {
                    return Err(RunError::DivByZero);
                }
                Word::int(int(args[0])?.wrapping_div(d))
            }
            Mod => {
                let d = int(args[1])?;
                if d == 0 {
                    return Err(RunError::DivByZero);
                }
                Word::int(int(args[0])?.wrapping_rem(d))
            }
            Neg => Word::int(int(args[0])?.wrapping_neg()),
            Lt => Word::bool(int(args[0])? < int(args[1])?),
            Le => Word::bool(int(args[0])? <= int(args[1])?),
            Gt => Word::bool(int(args[0])? > int(args[1])?),
            Ge => Word::bool(int(args[0])? >= int(args[1])?),
            Eq => Word::bool(self.value_eq(args[0], args[1])?),
            Ne => Word::bool(!self.value_eq(args[0], args[1])?),
            Not => match args[0].as_bool() {
                Some(b) => Word::bool(!b),
                None => return Err(RunError::Stuck("`not` on non-bool".into())),
            },
            Concat => {
                let a = self
                    .heap
                    .read_str(args[0], "string concat")
                    .or_else(|e| self.dangling(e))?;
                let b = self
                    .heap
                    .read_str(args[1], "string concat")
                    .or_else(|e| self.dangling(e))?;
                let rv = at.ok_or_else(|| RunError::Stuck("`^` without region".into()))?;
                let r = self.region(renv, rv)?;
                self.heap.alloc_str(r, &(a + &b))
            }
            Size => {
                let h = self
                    .heap
                    .header(args[0], "size")
                    .or_else(|e| self.dangling(e))?;
                Word::int(h.len as i64)
            }
            Itos => {
                let n = int(args[0])?;
                let rv = at.ok_or_else(|| RunError::Stuck("`itos` without region".into()))?;
                let r = self.region(renv, rv)?;
                self.heap.alloc_str(r, &n.to_string())
            }
            Print => {
                let s = self
                    .heap
                    .read_str(args[0], "print")
                    .or_else(|e| self.dangling(e))?;
                self.output.push_str(&s);
                Word::UNIT
            }
            ForceGc => {
                self.gc_pending = true;
                Word::UNIT
            }
        })
    }

    /// Structural equality over heap values.
    fn value_eq(&self, a: Word, b: Word) -> MResult<bool> {
        if a == b {
            return Ok(true);
        }
        if !a.is_pointer() || !b.is_pointer() {
            return Ok(false);
        }
        let ha = self
            .heap
            .header(a, "equality")
            .or_else(|e| self.dangling(e))?;
        let hb = self
            .heap
            .header(b, "equality")
            .or_else(|e| self.dangling(e))?;
        if ha.kind != hb.kind {
            return Ok(false);
        }
        match ha.kind {
            ObjKind::Str => Ok(self
                .heap
                .read_str(a, "equality")
                .or_else(|e| self.dangling(e))?
                == self
                    .heap
                    .read_str(b, "equality")
                    .or_else(|e| self.dangling(e))?),
            ObjKind::Pair | ObjKind::Cons => Ok(self
                .value_eq(self.field(a, 0, "equality")?, self.field(b, 0, "equality")?)?
                && self.value_eq(self.field(a, 1, "equality")?, self.field(b, 1, "equality")?)?),
            ObjKind::Ref => Ok(false), // distinct cells (identity compared above)
            ObjKind::Exn => Ok(self.field_raw(a, 0)? == self.field_raw(b, 0)?),
            _ => Ok(false),
        }
    }
}
