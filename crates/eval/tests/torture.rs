//! Torture-rig behaviors at the machine level: stale region reads are
//! caught at the read, stress schedules are deterministic under a fixed
//! seed, and injected faults unwind structurally and leave nothing
//! behind.

use rml_eval::{run, GcPolicy, RunError, RunOpts, RunValue, VerifyLevel};
use rml_infer::{infer, Options, Strategy};

fn compile(src: &str, strategy: Strategy) -> rml_infer::Output {
    let prog = rml_syntax::parse_program(src).unwrap();
    let typed = rml_hm::infer_program(&prog).unwrap();
    infer(
        &typed,
        Options {
            strategy,
            ..Options::default()
        },
    )
    .unwrap()
}

/// A stale read after a `letregion` pop is detected *at the read* — by
/// the pointer's page-epoch check, with the collector off and therefore
/// provably uninvolved. Region inference never produces such a term (the
/// point of the paper), so this hand-builds an ill-annotated one:
///
/// ```text
/// let r = letregion ρ1 in ref ("gone" at ρ1) at ρg
/// in size (!r)
/// ```
///
/// The reference cell lives in the global region and outlives ρ1; its
/// contents do not.
#[test]
fn letregion_pop_stale_read_is_detected_at_the_read() {
    use rml_core::{RegVar, Term};
    use rml_syntax::{ast::PrimOp, Symbol};

    let global = RegVar::fresh();
    let r1 = RegVar::fresh();
    let term = Term::Let {
        x: Symbol::intern("r"),
        rhs: Box::new(Term::Letregion {
            rvars: vec![r1],
            evars: vec![],
            body: Box::new(Term::RefNew(Box::new(Term::Str("gone".into(), r1)), global)),
        }),
        body: Box::new(Term::Prim(
            PrimOp::Size,
            vec![Term::Deref(Box::new(Term::Var(Symbol::intern("r"))))],
            None,
        )),
    };

    let mut opts = RunOpts::new(global);
    opts.gc = GcPolicy::Off;
    let err = run(&term, &opts).expect_err("the stale read must fault");
    assert!(
        matches!(err, RunError::Dangling(_)),
        "expected a dangling-read fault, got: {err}"
    );

    // The same shape with the string allocated in the *global* region is
    // fine — the fault above is precisely about the popped region.
    let sound = Term::Let {
        x: Symbol::intern("r"),
        rhs: Box::new(Term::Letregion {
            rvars: vec![r1],
            evars: vec![],
            body: Box::new(Term::RefNew(
                Box::new(Term::Str("gone".into(), global)),
                global,
            )),
        }),
        body: Box::new(Term::Prim(
            PrimOp::Size,
            vec![Term::Deref(Box::new(Term::Var(Symbol::intern("r"))))],
            None,
        )),
    };
    let mut opts = RunOpts::new(global);
    opts.gc = GcPolicy::Off;
    let out = run(&sound, &opts).expect("global-region contents outlive the pop");
    assert_eq!(out.value, RunValue::Int(4));
    assert_eq!(out.stats.gc_count, 0, "GC off means no collections at all");
}

const BUILDER: &str = "fun build n = if n = 0 then nil else (n, itos n) :: build (n - 1) \
     fun len xs = case xs of nil => 0 | h :: t => 1 + len t \
     fun main () = len (build 64)";

/// Same seed ⇒ same schedule ⇒ same outcome, down to the collection and
/// verification counts.
#[test]
fn stress_schedules_are_deterministic_per_seed() {
    let out = compile(BUILDER, Strategy::Rg);
    let go = |seed: u64| {
        let mut opts = RunOpts::new(out.global);
        opts.gc = GcPolicy::stress_every(3, seed);
        opts.verify = VerifyLevel::AfterGc;
        run(&out.term, &opts).expect("stressed run failed")
    };
    let a = go(0xDEAD_BEEF);
    let b = go(0xDEAD_BEEF);
    assert_eq!(a.value, b.value);
    assert_eq!(a.steps, b.steps);
    assert_eq!(a.stats.gc_count, b.stats.gc_count);
    assert_eq!(a.stats.forced_gcs, b.stats.forced_gcs);
    assert_eq!(a.stats.verify_walks, b.stats.verify_walks);
    // A different seed may collect at different points, but the value is
    // schedule-independent (that is the point of GC safety).
    let c = go(0x1234_5678);
    assert_eq!(a.value, c.value);
    assert_eq!(a.steps, c.steps, "steps consume no fuel during GC");
}

/// Injected faults unwind as structured errors — and because every run
/// builds a fresh machine, a clean run afterwards is unaffected.
#[test]
fn injected_faults_unwind_structurally_and_leave_no_residue() {
    let out = compile(BUILDER, Strategy::Rg);

    let mut opts = RunOpts::new(out.global);
    opts.alloc_budget = Some(10);
    match run(&out.term, &opts) {
        Err(RunError::OutOfMemory { allocs }) => assert_eq!(allocs, 10),
        other => panic!("expected OutOfMemory, got {other:?}"),
    }

    let mut opts = RunOpts::new(out.global);
    opts.depth_limit = Some(2);
    match run(&out.term, &opts) {
        Err(RunError::DepthLimit { depth }) => assert!(depth > 2),
        other => panic!("expected DepthLimit, got {other:?}"),
    }

    let opts = RunOpts::new(out.global);
    let clean = run(&out.term, &opts).expect("clean run after faults");
    assert_eq!(clean.value, RunValue::Int(64));
}

/// Figure 1 with an explicit `forcegc`, under the full stress schedule:
/// `rg` survives every collection point; `rg-` faults, and faults
/// *identically* on every run (the oracle's determinism contract).
#[test]
fn figure1_under_stress_rg_survives_rg_minus_faults_deterministically() {
    const FIGURE1: &str = "fun compose (f, g) = fn a => f (g a) \
         fun run () = \
           let val h = compose (let val x = \"oh\" ^ \"no\" in (fn y => (), fn () => x) end) \
               val u = forcegc () \
           in h () end \
         fun main () = run ()";

    let rg = compile(FIGURE1, Strategy::Rg);
    let mut opts = RunOpts::new(rg.global);
    opts.gc = GcPolicy::stress_every_step(0x7041_10E5);
    opts.verify = VerifyLevel::EveryStep;
    let out = run(&rg.term, &opts).expect("rg must survive stress");
    assert_eq!(out.value, RunValue::Unit);
    assert!(out.stats.forced_gcs > 0);
    assert!(out.stats.verify_walks > 0);

    let rgm = compile(FIGURE1, Strategy::RgMinus);
    let fail = |_: ()| {
        let mut opts = RunOpts::new(rgm.global);
        opts.gc = GcPolicy::stress_every_step(0x7041_10E5);
        opts.verify = VerifyLevel::EveryStep;
        run(&rgm.term, &opts).expect_err("rg- must fault under stress")
    };
    let e1 = fail(());
    let e2 = fail(());
    assert!(matches!(e1, RunError::Dangling(_)), "got: {e1}");
    assert_eq!(
        e1.to_string(),
        e2.to_string(),
        "fault must be deterministic"
    );
}
