//! Tests for the closure-layout pre-pass (free variables, free region
//! variables, group structure) via observable machine behaviour.

use rml_eval::{run, RunOpts, RunValue};
use rml_infer::{infer, Options, Strategy};

fn go(src: &str) -> RunValue {
    let prog = rml_syntax::parse_program(src).unwrap();
    let typed = rml_hm::infer_program(&prog).unwrap();
    let out = infer(
        &typed,
        Options {
            strategy: Strategy::Rg,
            ..Default::default()
        },
    )
    .unwrap();
    run(&out.term, &RunOpts::new(out.global)).unwrap().value
}

#[test]
fn nested_captures_resolve_through_two_levels() {
    assert_eq!(
        go("fun main () = \
              let val a = 100 \
                  val f = fn b => fn c => a + b + c \
              in f 20 3 end"),
        RunValue::Int(123)
    );
}

#[test]
fn closures_capture_regions_of_free_region_variables() {
    // The inner lambda allocates into a region bound outside it; the
    // closure must capture the region binding.
    assert_eq!(
        go("fun main () = \
              let val mk = fn n => (n, n) \
              in #1 (mk 5) + #2 (mk 6) end"),
        RunValue::Int(11)
    );
}

#[test]
fn shadowed_names_capture_the_right_binding() {
    assert_eq!(
        go("fun main () = \
              let val x = 1 \
                  val f = fn u => x \
                  val x = 2 \
                  val g = fn u => x \
              in f () * 10 + g () end"),
        RunValue::Int(12)
    );
}

#[test]
fn sibling_slots_connect_mutual_groups() {
    assert_eq!(
        go("fun a n = if n = 0 then 0 else b (n - 1) \
            and b n = if n = 0 then 1 else a (n - 1) \
            fun main () = a 7 * 10 + b 7"),
        RunValue::Int(10)
    );
}

#[test]
fn recursive_closure_passed_as_value() {
    // A fun used first-class (unfused region application).
    assert_eq!(
        go("fun inc n = n + 1 \
            fun apply3 f x = f (f (f x)) \
            fun main () = apply3 inc 0"),
        RunValue::Int(3)
    );
}

#[test]
fn deep_recursion_is_iterative_not_stack_bound() {
    // The machine must not blow the Rust stack on deep object-language
    // recursion.
    assert_eq!(
        go("fun down n = if n = 0 then 0 else down (n - 1) \
            fun main () = down 200000"),
        RunValue::Int(0)
    );
}

#[test]
fn letregion_inside_loop_reuses_pages() {
    let prog = rml_syntax::parse_program(
        "fun go n = if n = 0 then 0 else go (let val p = (n, n) in #1 p - 1 end) \
         fun main () = go 5000",
    )
    .unwrap();
    let typed = rml_hm::infer_program(&prog).unwrap();
    let out = infer(
        &typed,
        Options {
            strategy: Strategy::R,
            ..Default::default()
        },
    )
    .unwrap();
    let mut opts = RunOpts::new(out.global);
    opts.gc = rml_eval::GcPolicy::Off;
    let res = run(&out.term, &opts).unwrap();
    assert_eq!(res.value, RunValue::Int(0));
    // Thousands of regions created, but pages recycled: small peak.
    assert!(res.stats.regions_created > 5000);
    assert!(res.stats.peak_live_words < 100_000, "{:?}", res.stats);
}
