//! End-to-end machine tests: source → pipeline → heap execution, with and
//! without the tracing collector.

use rml_eval::{run, GcPolicy, RunError, RunOpts, RunValue};
use rml_infer::{infer, Options, Strategy};

fn compile(src: &str, strategy: Strategy) -> rml_infer::Output {
    let prog = rml_syntax::parse_program(src).unwrap();
    let typed = rml_hm::infer_program(&prog).unwrap();
    infer(
        &typed,
        Options {
            strategy,
            ..Options::default()
        },
    )
    .unwrap()
}

fn run_rg(src: &str) -> RunValue {
    let out = compile(src, Strategy::Rg);
    // Aggressive collection to stress the collector.
    let mut opts = RunOpts::new(out.global);
    opts.gc = GcPolicy::On {
        min_bytes: 512,
        ratio: 1.1,
        generational: false,
    };
    run(&out.term, &opts).expect("run failed").value
}

#[test]
fn arithmetic_runs() {
    assert_eq!(run_rg("fun main () = 2 + 3 * 4"), RunValue::Int(14));
}

#[test]
fn fib_runs_on_heap() {
    assert_eq!(
        run_rg("fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2) fun main () = fib 18"),
        RunValue::Int(2584)
    );
}

#[test]
fn lists_and_map_survive_gc() {
    assert_eq!(
        run_rg(
            "fun upto n = if n = 0 then nil else n :: upto (n - 1) \
             fun map f xs = case xs of nil => nil | h :: t => f h :: map f t \
             fun sum xs = case xs of nil => 0 | h :: t => h + sum t \
             fun main () = sum (map (fn x => x * 2) (upto 200))"
        ),
        RunValue::Int(40200)
    );
}

#[test]
fn strings_concat_and_size() {
    assert_eq!(
        run_rg("fun main () = size (\"hello\" ^ \" \" ^ \"world\" ^ itos 42)"),
        RunValue::Int(13)
    );
}

#[test]
fn closures_capture_values() {
    assert_eq!(
        run_rg(
            "fun adder n = fn m => n + m \
             fun main () = (adder 10) 32"
        ),
        RunValue::Int(42)
    );
}

#[test]
fn refs_and_loops() {
    assert_eq!(
        run_rg(
            "fun main () = \
               let val acc = ref 0 \
                   fun go n = if n = 0 then !acc else (acc := !acc + n; go (n - 1)) \
               in go 100 end"
        ),
        RunValue::Int(5050)
    );
}

#[test]
fn mutual_recursion_on_heap() {
    assert_eq!(
        run_rg(
            "fun even n = if n = 0 then true else odd (n - 1) \
             and odd n = if n = 0 then false else even (n - 1) \
             fun main () = even 100"
        ),
        RunValue::Bool(true)
    );
}

#[test]
fn exceptions_unwind_regions() {
    assert_eq!(
        run_rg(
            "exception Found of int \
             fun search xs = case xs of nil => 0 | h :: t => if h > 10 then raise (Found h) else search t \
             fun main () = (search [1, 5, 20, 3]) handle Found n => n"
        ),
        RunValue::Int(20)
    );
}

#[test]
fn uncaught_exception_is_reported() {
    let out = compile("exception Boom fun main () = raise Boom", Strategy::Rg);
    let err = run(&out.term, &RunOpts::new(out.global)).unwrap_err();
    assert!(matches!(err, RunError::Uncaught(n) if n == "Boom"));
}

#[test]
fn print_output_is_captured() {
    let out = compile("fun main () = (print \"a\"; print \"b\"; 0)", Strategy::Rg);
    let res = run(&out.term, &RunOpts::new(out.global)).unwrap();
    assert_eq!(res.output, "ab");
}

const FIGURE1: &str = "fun compose (f, g) = fn a => f (g a) \
fun run () = \
  let val h = compose (let val x = \"oh\" ^ \"no\" in (fn y => (), fn () => x) end) \
      val u = forcegc () \
  in h () end \
fun main () = run ()";

#[test]
fn figure1_rg_runs_with_forced_gc() {
    // The paper's Figure 1: under rg the forced collection is safe.
    let out = compile(FIGURE1, Strategy::Rg);
    let res = run(&out.term, &RunOpts::new(out.global)).unwrap();
    assert_eq!(res.value, RunValue::Unit);
    assert!(res.stats.gc_count >= 1, "forcegc must trigger a collection");
}

#[test]
fn figure1_rgminus_crashes_the_collector() {
    // Under rg- the collector traces the dangling pointer left in `h`.
    let out = compile(FIGURE1, Strategy::RgMinus);
    let err = run(&out.term, &RunOpts::new(out.global)).unwrap_err();
    assert!(matches!(err, RunError::Dangling(_)), "got {err:?}");
}

#[test]
fn figure1_r_mode_runs_without_gc() {
    let out = compile(FIGURE1, Strategy::R);
    let mut opts = RunOpts::new(out.global);
    opts.gc = GcPolicy::Off;
    let res = run(&out.term, &opts).unwrap();
    assert_eq!(res.value, RunValue::Unit);
    assert_eq!(res.stats.gc_count, 0);
}

#[test]
fn baseline_mode_ignores_regions() {
    let src = "fun upto n = if n = 0 then nil else n :: upto (n - 1) \
               fun sum xs = case xs of nil => 0 | h :: t => h + sum t \
               fun main () = sum (upto 500)";
    let out = compile(src, Strategy::Rg);
    let res = run(&out.term, &RunOpts::baseline(out.global)).unwrap();
    assert_eq!(res.value, RunValue::Int(125250));
    assert_eq!(res.stats.regions_created, 1, "baseline uses one region");
}

#[test]
fn regions_bound_memory_without_gc() {
    // A loop whose garbage dies with its per-iteration region: even with
    // GC off, memory stays bounded because letregion pops pages.
    // The per-iteration pair dies before the tail call (its letregion
    // wraps the argument computation).
    let src = "fun go n = if n = 0 then 0 else \
                 go (let val p = (n, (n, n)) in #1 p - 1 end) \
               fun main () = go 20000";
    let out = compile(src, Strategy::R);
    let mut opts = RunOpts::new(out.global);
    opts.gc = GcPolicy::Off;
    let res = run(&out.term, &opts).unwrap();
    assert_eq!(res.value, RunValue::Int(0));
    assert!(
        res.stats.peak_live_words < 200_000,
        "peak {} words — regions did not bound memory",
        res.stats.peak_live_words
    );
}

#[test]
fn gc_bounds_memory_for_region_unfriendly_code() {
    // A list rebuilt per iteration in one long-lived region: with GC on,
    // memory stays bounded.
    let src = "fun build n acc = if n = 0 then acc else build (n - 1) ((n, n) :: nil) \
               fun main () = case build 30000 nil of nil => 0 | h :: t => #1 h";
    let out = compile(src, Strategy::Rg);
    let mut opts = RunOpts::new(out.global);
    opts.gc = GcPolicy::On {
        min_bytes: 8 * 1024,
        ratio: 1.2,
        generational: false,
    };
    let res = run(&out.term, &opts).unwrap();
    assert_eq!(res.value, RunValue::Int(1));
    assert!(res.stats.gc_count > 0);
}

#[test]
fn generational_mode_runs() {
    let src = "fun upto n = if n = 0 then nil else n :: upto (n - 1) \
               fun sum xs = case xs of nil => 0 | h :: t => h + sum t \
               fun main () = sum (upto 2000)";
    let out = compile(src, Strategy::Rg);
    let mut opts = RunOpts::new(out.global);
    opts.gc = GcPolicy::On {
        min_bytes: 4 * 1024,
        ratio: 1.2,
        generational: true,
    };
    let res = run(&out.term, &opts).unwrap();
    assert_eq!(res.value, RunValue::Int(2001000));
    assert!(res.stats.minor_gc_count > 0, "stats: {:?}", res.stats);
}

#[test]
fn deep_polymorphic_program_with_gc() {
    let src = "fun compose (f, g) = fn a => f (g a) \
               fun twice f = compose (f, f) \
               fun main () = (twice (twice (fn x => x + 1))) 0";
    assert_eq!(run_rg(src), RunValue::Int(4));
}

#[test]
fn results_decode_structures() {
    let out = compile("fun main () = (1, (\"two\", [3, 4]))", Strategy::Rg);
    let res = run(&out.term, &RunOpts::new(out.global)).unwrap();
    assert_eq!(
        res.value,
        RunValue::Pair(
            Box::new(RunValue::Int(1)),
            Box::new(RunValue::Pair(
                Box::new(RunValue::Str("two".into())),
                Box::new(RunValue::List(vec![RunValue::Int(3), RunValue::Int(4)]))
            ))
        )
    );
}
