//! Algorithm W over the source AST, producing a typed AST.

use crate::tast::{TBind, TExpr, TExprKind, TFunBind, TProgram};
use crate::types::{Scheme, Ty, TyStore};
use rml_session::Span;
use rml_syntax::ast::{Decl, Expr, ExprKind, PrimOp, Program, TyAnn};
use rml_syntax::Symbol;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// A type error with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TypeError {
    /// The message.
    pub msg: String,
    /// Span of the smallest enclosing expression, when known.
    pub span: Option<Span>,
}

impl TypeError {
    /// Attaches `span` unless a (more precise, innermost) span is already
    /// recorded.
    fn at(mut self, span: Span) -> TypeError {
        if self.span.is_none() && !span.is_dummy() {
            self.span = Some(span);
        }
        self
    }
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "type error: {}", self.msg)
    }
}

impl std::error::Error for TypeError {}

fn err<T>(msg: impl Into<String>) -> Result<T, TypeError> {
    Err(TypeError {
        msg: msg.into(),
        span: None,
    })
}

#[derive(Debug, Clone)]
enum EnvEntry {
    /// Generalised binding.
    Poly(Scheme),
    /// Monomorphic binding (parameters, case binders, in-progress
    /// recursive functions).
    Mono(Ty),
    /// Exception constructor with optional argument type.
    Exn(Option<Ty>),
}

struct Infer {
    store: TyStore,
    env: Vec<(Symbol, EnvEntry)>,
    next_quant: u32,
}

type IResult<T> = Result<T, TypeError>;

/// The names treated as builtins when not bound in the environment.
const BUILTINS: &[(&str, PrimOp)] = &[
    ("print", PrimOp::Print),
    ("itos", PrimOp::Itos),
    ("size", PrimOp::Size),
    ("forcegc", PrimOp::ForceGc),
];

fn builtin_sig(op: PrimOp) -> (Ty, Ty) {
    match op {
        PrimOp::Print => (Ty::Str, Ty::Unit),
        PrimOp::Itos => (Ty::Int, Ty::Str),
        PrimOp::Size => (Ty::Str, Ty::Int),
        PrimOp::ForceGc => (Ty::Unit, Ty::Unit),
        _ => unreachable!("not a named builtin"),
    }
}

impl Infer {
    fn lookup(&self, x: Symbol) -> Option<&EnvEntry> {
        self.env.iter().rev().find(|(y, _)| *y == x).map(|(_, e)| e)
    }

    fn unify(&mut self, a: &Ty, b: &Ty, what: &str) -> IResult<()> {
        self.store.unify(a, b).map_err(|(x, y)| TypeError {
            msg: format!("cannot unify `{x}` with `{y}` in {what}"),
            span: None,
        })
    }

    fn resolve(&self, t: &Ty) -> Ty {
        self.store.zonk_with(t, &mut Ty::Meta)
    }

    fn instantiate(&mut self, s: &Scheme) -> (Ty, Vec<Ty>) {
        let args: Vec<Ty> = s.vars.iter().map(|_| self.store.fresh()).collect();
        let body = self.resolve(&s.body);
        let map: Vec<(u32, &Ty)> = s.vars.iter().copied().zip(args.iter()).collect();
        (crate::types::subst_quant(&body, &map), args)
    }

    fn env_metas(&self) -> BTreeSet<u32> {
        let mut out = BTreeSet::new();
        for (_, entry) in &self.env {
            match entry {
                EnvEntry::Poly(s) => self.store.free_metas(&s.body, &mut out),
                EnvEntry::Mono(t) => self.store.free_metas(t, &mut out),
                EnvEntry::Exn(Some(t)) => self.store.free_metas(t, &mut out),
                EnvEntry::Exn(None) => {}
            }
        }
        out
    }

    /// Generalises `ty`, destructively binding generalisable metas to fresh
    /// `Quant` variables in the store (so all other references resolve
    /// consistently).
    fn generalize(&mut self, ty: &Ty) -> Scheme {
        let env_metas = self.env_metas();
        let mut free = BTreeSet::new();
        self.store.free_metas(ty, &mut free);
        let mut vars = Vec::new();
        for m in free {
            if !env_metas.contains(&m) {
                let q = self.next_quant;
                self.next_quant += 1;
                self.store
                    .unify(&Ty::Meta(m), &Ty::Quant(q))
                    .expect("binding fresh quant cannot fail");
                vars.push(q);
            }
        }
        Scheme {
            vars,
            body: self.resolve(ty),
        }
    }

    fn ann_to_ty(&mut self, ann: &TyAnn, tvs: &mut HashMap<Symbol, Ty>) -> Ty {
        match ann {
            TyAnn::Var(v) => tvs.entry(*v).or_insert_with(|| self.store.fresh()).clone(),
            TyAnn::Int => Ty::Int,
            TyAnn::String => Ty::Str,
            TyAnn::Bool => Ty::Bool,
            TyAnn::Unit => Ty::Unit,
            TyAnn::Exn => Ty::Exn,
            TyAnn::List(e) => Ty::List(Box::new(self.ann_to_ty(e, tvs))),
            TyAnn::Ref(e) => Ty::Ref(Box::new(self.ann_to_ty(e, tvs))),
            TyAnn::Pair(a, b) => Ty::Pair(
                Box::new(self.ann_to_ty(a, tvs)),
                Box::new(self.ann_to_ty(b, tvs)),
            ),
            TyAnn::Arrow(a, b) => Ty::Arrow(
                Box::new(self.ann_to_ty(a, tvs)),
                Box::new(self.ann_to_ty(b, tvs)),
            ),
        }
    }

    fn prim_result(&mut self, op: PrimOp, args: &[TExpr]) -> IResult<Ty> {
        use PrimOp::*;
        let req = |me: &mut Self, i: usize, t: Ty| -> IResult<()> {
            let at = args[i].ty.clone();
            me.unify(&at, &t, &format!("argument of `{op}`"))
        };
        Ok(match op {
            Add | Sub | Mul | Div | Mod => {
                req(self, 0, Ty::Int)?;
                req(self, 1, Ty::Int)?;
                Ty::Int
            }
            Neg => {
                req(self, 0, Ty::Int)?;
                Ty::Int
            }
            Lt | Le | Gt | Ge => {
                req(self, 0, Ty::Int)?;
                req(self, 1, Ty::Int)?;
                Ty::Bool
            }
            Eq | Ne => {
                let (a, b) = (args[0].ty.clone(), args[1].ty.clone());
                self.unify(&a, &b, "operands of equality")?;
                Ty::Bool
            }
            Not => {
                req(self, 0, Ty::Bool)?;
                Ty::Bool
            }
            Concat => {
                req(self, 0, Ty::Str)?;
                req(self, 1, Ty::Str)?;
                Ty::Str
            }
            Size => {
                req(self, 0, Ty::Str)?;
                Ty::Int
            }
            Itos => {
                req(self, 0, Ty::Int)?;
                Ty::Str
            }
            Print => {
                req(self, 0, Ty::Str)?;
                Ty::Unit
            }
            ForceGc => {
                req(self, 0, Ty::Unit)?;
                Ty::Unit
            }
        })
    }

    /// Infers `e`, attaching the innermost available span to any error.
    fn expr(&mut self, e: &Expr, tvs: &mut HashMap<Symbol, Ty>) -> IResult<TExpr> {
        self.expr_inner(e, tvs).map_err(|te| te.at(e.span))
    }

    fn expr_inner(&mut self, e: &Expr, tvs: &mut HashMap<Symbol, Ty>) -> IResult<TExpr> {
        let span = e.span;
        match &e.kind {
            ExprKind::Unit => Ok(TExpr {
                span,
                ty: Ty::Unit,
                kind: TExprKind::Unit,
            }),
            ExprKind::Int(n) => Ok(TExpr {
                span,
                ty: Ty::Int,
                kind: TExprKind::Int(*n),
            }),
            ExprKind::Str(s) => Ok(TExpr {
                span,
                ty: Ty::Str,
                kind: TExprKind::Str(s.clone()),
            }),
            ExprKind::Bool(b) => Ok(TExpr {
                span,
                ty: Ty::Bool,
                kind: TExprKind::Bool(*b),
            }),
            ExprKind::Var(x) => self.var_occurrence(*x, span),
            ExprKind::Lam { param, ann, body } => {
                let pt = match ann {
                    Some(a) => self.ann_to_ty(a, tvs),
                    None => self.store.fresh(),
                };
                self.env.push((*param, EnvEntry::Mono(pt.clone())));
                let tb = self.expr(body, tvs)?;
                self.env.pop();
                Ok(TExpr {
                    span,
                    ty: Ty::Arrow(Box::new(pt.clone()), Box::new(tb.ty.clone())),
                    kind: TExprKind::Lam {
                        param: *param,
                        param_ty: pt,
                        body: Box::new(tb),
                    },
                })
            }
            ExprKind::App(f, a) => {
                // Exception constructors and builtins applied directly
                // become dedicated nodes instead of general applications.
                if let ExprKind::Var(x) = &f.kind {
                    match self.lookup(*x).cloned() {
                        Some(EnvEntry::Exn(arg_ty)) => {
                            let Some(arg_ty) = arg_ty else {
                                return err(format!(
                                    "exception `{x}` takes no argument but one was supplied"
                                ));
                            };
                            let ta = self.expr(a, tvs)?;
                            let t = ta.ty.clone();
                            self.unify(&t, &arg_ty, &format!("argument of exception `{x}`"))?;
                            return Ok(TExpr {
                                span,
                                ty: Ty::Exn,
                                kind: TExprKind::ConApp {
                                    exn: *x,
                                    arg: Some(Box::new(ta)),
                                },
                            });
                        }
                        None => {
                            if let Some((_, op)) = BUILTINS.iter().find(|(n, _)| *n == x.as_str()) {
                                let ta = self.expr(a, tvs)?;
                                let rt = self.prim_result(*op, std::slice::from_ref(&ta))?;
                                return Ok(TExpr {
                                    span,
                                    ty: rt,
                                    kind: TExprKind::Prim(*op, vec![ta]),
                                });
                            }
                        }
                        _ => {}
                    }
                }
                let tf = self.expr(f, tvs)?;
                let ta = self.expr(a, tvs)?;
                let r = self.store.fresh();
                let want = Ty::Arrow(Box::new(ta.ty.clone()), Box::new(r.clone()));
                self.unify(&tf.ty.clone(), &want, "function application")?;
                Ok(TExpr {
                    span,
                    ty: r,
                    kind: TExprKind::App(Box::new(tf), Box::new(ta)),
                })
            }
            ExprKind::Let { decls, body } => {
                let saved = self.env.len();
                let binds = self.do_binds(decls, tvs)?;
                let tb = self.expr(body, tvs)?;
                self.env.truncate(saved);
                Ok(TExpr {
                    span,
                    ty: tb.ty.clone(),
                    kind: TExprKind::Let {
                        binds,
                        body: Box::new(tb),
                    },
                })
            }
            ExprKind::Pair(a, b) => {
                let ta = self.expr(a, tvs)?;
                let tb = self.expr(b, tvs)?;
                Ok(TExpr {
                    span,
                    ty: Ty::Pair(Box::new(ta.ty.clone()), Box::new(tb.ty.clone())),
                    kind: TExprKind::Pair(Box::new(ta), Box::new(tb)),
                })
            }
            ExprKind::Sel(i, e) => {
                let te = self.expr(e, tvs)?;
                let a = self.store.fresh();
                let b = self.store.fresh();
                let want = Ty::Pair(Box::new(a.clone()), Box::new(b.clone()));
                self.unify(&te.ty.clone(), &want, "projection")?;
                Ok(TExpr {
                    span,
                    ty: if *i == 1 { a } else { b },
                    kind: TExprKind::Sel(*i, Box::new(te)),
                })
            }
            ExprKind::If(c, t, f) => {
                let tc = self.expr(c, tvs)?;
                self.unify(&tc.ty.clone(), &Ty::Bool, "condition of `if`")?;
                let tt = self.expr(t, tvs)?;
                let tf = self.expr(f, tvs)?;
                self.unify(&tt.ty.clone(), &tf.ty.clone(), "branches of `if`")?;
                Ok(TExpr {
                    span,
                    ty: tt.ty.clone(),
                    kind: TExprKind::If(Box::new(tc), Box::new(tt), Box::new(tf)),
                })
            }
            ExprKind::Prim(op, args) => {
                let targs: Vec<TExpr> = args
                    .iter()
                    .map(|a| self.expr(a, tvs))
                    .collect::<IResult<_>>()?;
                let rt = self.prim_result(*op, &targs)?;
                Ok(TExpr {
                    span,
                    ty: rt,
                    kind: TExprKind::Prim(*op, targs),
                })
            }
            ExprKind::Nil => {
                let a = self.store.fresh();
                Ok(TExpr {
                    span,
                    ty: Ty::List(Box::new(a)),
                    kind: TExprKind::Nil,
                })
            }
            ExprKind::Cons(h, t) => {
                let th = self.expr(h, tvs)?;
                let tt = self.expr(t, tvs)?;
                let want = Ty::List(Box::new(th.ty.clone()));
                self.unify(&tt.ty.clone(), &want, "tail of `::`")?;
                Ok(TExpr {
                    span,
                    ty: want,
                    kind: TExprKind::Cons(Box::new(th), Box::new(tt)),
                })
            }
            ExprKind::CaseList {
                scrut,
                nil_rhs,
                head,
                tail,
                cons_rhs,
            } => {
                let ts = self.expr(scrut, tvs)?;
                let a = self.store.fresh();
                let want = Ty::List(Box::new(a.clone()));
                self.unify(&ts.ty.clone(), &want, "scrutinee of `case`")?;
                let tn = self.expr(nil_rhs, tvs)?;
                self.env.push((*head, EnvEntry::Mono(a.clone())));
                self.env.push((*tail, EnvEntry::Mono(want)));
                let tc = self.expr(cons_rhs, tvs)?;
                self.env.pop();
                self.env.pop();
                self.unify(&tn.ty.clone(), &tc.ty.clone(), "branches of `case`")?;
                Ok(TExpr {
                    span,
                    ty: tn.ty.clone(),
                    kind: TExprKind::CaseList {
                        scrut: Box::new(ts),
                        nil_rhs: Box::new(tn),
                        head: *head,
                        tail: *tail,
                        cons_rhs: Box::new(tc),
                    },
                })
            }
            ExprKind::Ref(e) => {
                let te = self.expr(e, tvs)?;
                Ok(TExpr {
                    span,
                    ty: Ty::Ref(Box::new(te.ty.clone())),
                    kind: TExprKind::Ref(Box::new(te)),
                })
            }
            ExprKind::Deref(e) => {
                let te = self.expr(e, tvs)?;
                let a = self.store.fresh();
                self.unify(&te.ty.clone(), &Ty::Ref(Box::new(a.clone())), "dereference")?;
                Ok(TExpr {
                    span,
                    ty: a,
                    kind: TExprKind::Deref(Box::new(te)),
                })
            }
            ExprKind::Assign(r, v) => {
                let tr = self.expr(r, tvs)?;
                let tv = self.expr(v, tvs)?;
                let want = Ty::Ref(Box::new(tv.ty.clone()));
                self.unify(&tr.ty.clone(), &want, "assignment")?;
                Ok(TExpr {
                    span,
                    ty: Ty::Unit,
                    kind: TExprKind::Assign(Box::new(tr), Box::new(tv)),
                })
            }
            ExprKind::Seq(a, b) => {
                let ta = self.expr(a, tvs)?;
                let tb = self.expr(b, tvs)?;
                Ok(TExpr {
                    span,
                    ty: tb.ty.clone(),
                    kind: TExprKind::Seq(Box::new(ta), Box::new(tb)),
                })
            }
            ExprKind::Ann(e, ann) => {
                let te = self.expr(e, tvs)?;
                let want = self.ann_to_ty(ann, tvs);
                self.unify(&te.ty.clone(), &want, "type annotation")?;
                Ok(te)
            }
            ExprKind::Raise(e) => {
                let te = self.expr(e, tvs)?;
                self.unify(&te.ty.clone(), &Ty::Exn, "operand of `raise`")?;
                let r = self.store.fresh();
                Ok(TExpr {
                    span,
                    ty: r,
                    kind: TExprKind::Raise(Box::new(te)),
                })
            }
            ExprKind::Handle {
                body,
                exn,
                arg,
                handler,
            } => {
                let tb = self.expr(body, tvs)?;
                let arg_ty = match self.lookup(*exn) {
                    Some(EnvEntry::Exn(t)) => t.clone().unwrap_or(Ty::Unit),
                    Some(_) => return err(format!("`{exn}` is not an exception constructor")),
                    None => return err(format!("unbound exception `{exn}`")),
                };
                self.env.push((*arg, EnvEntry::Mono(arg_ty.clone())));
                let th = self.expr(handler, tvs)?;
                self.env.pop();
                self.unify(&tb.ty.clone(), &th.ty.clone(), "handler result")?;
                Ok(TExpr {
                    span,
                    ty: tb.ty.clone(),
                    kind: TExprKind::Handle {
                        body: Box::new(tb),
                        exn: *exn,
                        arg: *arg,
                        arg_ty,
                        handler: Box::new(th),
                    },
                })
            }
            ExprKind::Con(name, arg) => {
                // Produced only by desugaring; type like ConApp.
                let arg_ty = match self.lookup(*name) {
                    Some(EnvEntry::Exn(t)) => t.clone(),
                    _ => return err(format!("unbound exception `{name}`")),
                };
                let targ = match (arg, arg_ty) {
                    (None, None) => None,
                    (Some(a), Some(t)) => {
                        let ta = self.expr(a, tvs)?;
                        self.unify(&ta.ty.clone(), &t, "exception argument")?;
                        Some(Box::new(ta))
                    }
                    _ => return err(format!("arity mismatch for exception `{name}`")),
                };
                Ok(TExpr {
                    span,
                    ty: Ty::Exn,
                    kind: TExprKind::ConApp {
                        exn: *name,
                        arg: targ,
                    },
                })
            }
        }
    }

    fn var_occurrence(&mut self, x: Symbol, span: Span) -> IResult<TExpr> {
        match self.lookup(x).cloned() {
            Some(EnvEntry::Poly(s)) => {
                let (ty, inst) = self.instantiate(&s);
                Ok(TExpr {
                    span,
                    ty,
                    kind: TExprKind::Var {
                        name: x,
                        inst: Some(inst),
                    },
                })
            }
            Some(EnvEntry::Mono(t)) => Ok(TExpr {
                span,
                ty: t,
                kind: TExprKind::Var {
                    name: x,
                    inst: None,
                },
            }),
            Some(EnvEntry::Exn(arg)) => match arg {
                None => Ok(TExpr {
                    span,
                    ty: Ty::Exn,
                    kind: TExprKind::ConApp { exn: x, arg: None },
                }),
                Some(at) => {
                    // Constructor used as a value: eta-expand.
                    let p = Symbol::fresh("x");
                    let body = TExpr {
                        span,
                        ty: Ty::Exn,
                        kind: TExprKind::ConApp {
                            exn: x,
                            arg: Some(Box::new(TExpr {
                                span,
                                ty: at.clone(),
                                kind: TExprKind::Var {
                                    name: p,
                                    inst: None,
                                },
                            })),
                        },
                    };
                    Ok(TExpr {
                        span,
                        ty: Ty::Arrow(Box::new(at.clone()), Box::new(Ty::Exn)),
                        kind: TExprKind::Lam {
                            param: p,
                            param_ty: at,
                            body: Box::new(body),
                        },
                    })
                }
            },
            None => {
                if let Some((_, op)) = BUILTINS.iter().find(|(n, _)| *n == x.as_str()) {
                    // Builtin used as a value: eta-expand.
                    let (at, rt) = builtin_sig(*op);
                    let p = Symbol::fresh("x");
                    let arg = TExpr {
                        span,
                        ty: at.clone(),
                        kind: TExprKind::Var {
                            name: p,
                            inst: None,
                        },
                    };
                    let body = TExpr {
                        span,
                        ty: rt.clone(),
                        kind: TExprKind::Prim(*op, vec![arg]),
                    };
                    Ok(TExpr {
                        span,
                        ty: Ty::Arrow(Box::new(at.clone()), Box::new(rt)),
                        kind: TExprKind::Lam {
                            param: p,
                            param_ty: at,
                            body: Box::new(body),
                        },
                    })
                } else {
                    err(format!("unbound variable `{x}`"))
                }
            }
        }
    }

    fn do_binds(&mut self, decls: &[Decl], tvs: &mut HashMap<Symbol, Ty>) -> IResult<Vec<TBind>> {
        let mut out = Vec::new();
        for d in decls {
            match d {
                Decl::Val(x, e) => {
                    let te = self.expr(e, tvs)?;
                    let scheme = if is_value(e) {
                        self.generalize(&te.ty.clone())
                    } else {
                        Scheme::mono(self.resolve(&te.ty))
                    };
                    self.env.push((*x, EnvEntry::Poly(scheme.clone())));
                    out.push(TBind::Val {
                        name: *x,
                        scheme,
                        rhs: te,
                    });
                }
                Decl::Fun(binds) => {
                    // Monomorphic recursion: bind every function of the
                    // group to a fresh meta while inferring the bodies.
                    let metas: Vec<Ty> = binds.iter().map(|_| self.store.fresh()).collect();
                    let rec_base = self.env.len();
                    for (b, m) in binds.iter().zip(&metas) {
                        self.env.push((b.name, EnvEntry::Mono(m.clone())));
                    }
                    let mut partial = Vec::new();
                    for (b, m) in binds.iter().zip(&metas) {
                        let (fun_ty, param, param_ty, body) = self.fun_body(b, tvs)?;
                        self.unify(&fun_ty, m, &format!("recursive uses of `{}`", b.name))?;
                        partial.push((b.name, fun_ty, param, param_ty, body, b.span));
                    }
                    self.env.truncate(rec_base);
                    // Joint generalisation over the group.
                    let env_metas = self.env_metas();
                    let mut assigned: Vec<u32> = Vec::new();
                    for (_, fun_ty, _, _, _, _) in &partial {
                        let mut free = BTreeSet::new();
                        self.store.free_metas(fun_ty, &mut free);
                        for m in free {
                            if !env_metas.contains(&m) {
                                let q = self.next_quant;
                                self.next_quant += 1;
                                self.store
                                    .unify(&Ty::Meta(m), &Ty::Quant(q))
                                    .expect("binding fresh quant cannot fail");
                                assigned.push(q);
                            }
                        }
                    }
                    let mut group = Vec::new();
                    for (name, fun_ty, param, param_ty, body, span) in partial {
                        let body_ty = self.resolve(&fun_ty);
                        let mut qs = BTreeSet::new();
                        body_ty.quant_vars(&mut qs);
                        let vars: Vec<u32> = assigned
                            .iter()
                            .copied()
                            .filter(|q| qs.contains(q))
                            .collect();
                        let scheme = Scheme {
                            vars,
                            body: body_ty,
                        };
                        self.env.push((name, EnvEntry::Poly(scheme.clone())));
                        group.push(TFunBind {
                            name,
                            scheme,
                            param,
                            param_ty,
                            body,
                            span,
                        });
                    }
                    out.push(TBind::Fun(group));
                }
                Decl::Exception(name, ann) => {
                    let arg = ann.as_ref().map(|a| self.ann_to_ty(a, tvs));
                    self.env.push((*name, EnvEntry::Exn(arg.clone())));
                    out.push(TBind::Exception { name: *name, arg });
                }
            }
        }
        Ok(out)
    }

    /// Infers one `fun` binding, currying extra parameters into lambdas.
    /// Returns the function type, first parameter, its type, and the body.
    fn fun_body(
        &mut self,
        b: &rml_syntax::ast::FunBind,
        tvs: &mut HashMap<Symbol, Ty>,
    ) -> IResult<(Ty, Symbol, Ty, TExpr)> {
        assert!(!b.params.is_empty(), "fun binding without parameters");
        let saved = self.env.len();
        let ptys: Vec<Ty> = b
            .params
            .iter()
            .map(|(_, ann)| match ann {
                Some(a) => self.ann_to_ty(a, tvs),
                None => self.store.fresh(),
            })
            .collect();
        for ((p, _), t) in b.params.iter().zip(&ptys) {
            self.env.push((*p, EnvEntry::Mono(t.clone())));
        }
        let tb = self.expr(&b.body, tvs)?;
        if let Some(r) = &b.ret {
            let want = self.ann_to_ty(r, tvs);
            self.unify(
                &tb.ty.clone(),
                &want,
                &format!("result annotation of `{}`", b.name),
            )?;
        }
        self.env.truncate(saved);
        // Curry parameters 2..n into nested lambdas, which inherit the
        // binding's name span.
        let span = b.span;
        let mut acc = tb;
        for ((p, _), t) in b.params.iter().zip(&ptys).skip(1).rev() {
            acc = TExpr {
                span,
                ty: Ty::Arrow(Box::new(t.clone()), Box::new(acc.ty.clone())),
                kind: TExprKind::Lam {
                    param: *p,
                    param_ty: t.clone(),
                    body: Box::new(acc),
                },
            };
        }
        let fun_ty = Ty::Arrow(Box::new(ptys[0].clone()), Box::new(acc.ty.clone()));
        Ok((fun_ty, b.params[0].0, ptys[0].clone(), acc))
    }
}

/// SML value restriction: only syntactic values may be generalised.
fn is_value(e: &Expr) -> bool {
    match &e.kind {
        ExprKind::Unit
        | ExprKind::Int(_)
        | ExprKind::Str(_)
        | ExprKind::Bool(_)
        | ExprKind::Var(_)
        | ExprKind::Lam { .. }
        | ExprKind::Nil => true,
        ExprKind::Pair(a, b) | ExprKind::Cons(a, b) => is_value(a) && is_value(b),
        ExprKind::Ann(e, _) => is_value(e),
        _ => false,
    }
}

// ---------------------------------------------------------------------
// Final zonk and validation.
// ---------------------------------------------------------------------

fn zonk_ty(store: &TyStore, t: &mut Ty) {
    *t = store.zonk_default(t, &Ty::Unit);
}

fn zonk_expr(store: &TyStore, e: &mut TExpr) {
    zonk_ty(store, &mut e.ty);
    match &mut e.kind {
        TExprKind::Var { inst: Some(ts), .. } => {
            for t in ts {
                zonk_ty(store, t);
            }
        }
        TExprKind::Lam { param_ty, body, .. } => {
            zonk_ty(store, param_ty);
            zonk_expr(store, body);
        }
        TExprKind::App(a, b)
        | TExprKind::Pair(a, b)
        | TExprKind::Cons(a, b)
        | TExprKind::Assign(a, b)
        | TExprKind::Seq(a, b) => {
            zonk_expr(store, a);
            zonk_expr(store, b);
        }
        TExprKind::Let { binds, body } => {
            for b in binds.iter_mut() {
                zonk_bind(store, b);
            }
            zonk_expr(store, body);
        }
        TExprKind::Sel(_, a) | TExprKind::Ref(a) | TExprKind::Deref(a) | TExprKind::Raise(a) => {
            zonk_expr(store, a)
        }
        TExprKind::If(a, b, c) => {
            zonk_expr(store, a);
            zonk_expr(store, b);
            zonk_expr(store, c);
        }
        TExprKind::Prim(_, args) => {
            for a in args {
                zonk_expr(store, a);
            }
        }
        TExprKind::CaseList {
            scrut,
            nil_rhs,
            cons_rhs,
            ..
        } => {
            zonk_expr(store, scrut);
            zonk_expr(store, nil_rhs);
            zonk_expr(store, cons_rhs);
        }
        TExprKind::Handle {
            body,
            arg_ty,
            handler,
            ..
        } => {
            zonk_expr(store, body);
            zonk_ty(store, arg_ty);
            zonk_expr(store, handler);
        }
        TExprKind::ConApp { arg: Some(a), .. } => {
            zonk_expr(store, a);
        }
        _ => {}
    }
}

fn zonk_bind(store: &TyStore, b: &mut TBind) {
    match b {
        TBind::Val { scheme, rhs, .. } => {
            zonk_ty(store, &mut scheme.body);
            zonk_expr(store, rhs);
        }
        TBind::Fun(fs) => {
            for fb in fs {
                zonk_ty(store, &mut fb.scheme.body);
                zonk_ty(store, &mut fb.param_ty);
                zonk_expr(store, &mut fb.body);
            }
        }
        TBind::Exception { arg, .. } => {
            if let Some(t) = arg {
                zonk_ty(store, t);
            }
        }
    }
}

fn validate_equality(p: &TProgram) -> IResult<()> {
    let mut bad: Option<Ty> = None;
    p.walk(&mut |e: &TExpr| {
        if let TExprKind::Prim(PrimOp::Eq | PrimOp::Ne, args) = &e.kind {
            let t = &args[0].ty;
            if t.contains_arrow() && bad.is_none() {
                bad = Some(t.clone());
            }
        }
    });
    match bad {
        Some(t) => err(format!("equality applied at function type `{t}`")),
        None => Ok(()),
    }
}

/// Runs Hindley–Milner inference over a program.
///
/// # Errors
///
/// Returns a [`TypeError`] for unbound variables, unification failures,
/// exception arity mismatches, or equality applied at a function type.
///
/// # Example
///
/// ```
/// let p = rml_syntax::parse_program("fun twice f x = f (f x)").unwrap();
/// let t = rml_hm::infer_program(&p).unwrap();
/// let rml_hm::TBind::Fun(fs) = &t.binds[0] else { panic!() };
/// assert_eq!(fs[0].scheme.vars.len(), 1); // ∀'a. ('a -> 'a) -> 'a -> 'a
/// ```
pub fn infer_program(p: &Program) -> Result<TProgram, TypeError> {
    let mut inf = Infer {
        store: TyStore::new(),
        env: Vec::new(),
        next_quant: 0,
    };
    let mut binds = Vec::new();
    for d in &p.decls {
        let mut tvs = HashMap::new();
        let mut bs = inf.do_binds(std::slice::from_ref(d), &mut tvs)?;
        binds.append(&mut bs);
    }
    let mut tp = TProgram { binds };
    for b in tp.binds.iter_mut() {
        zonk_bind(&inf.store, b);
    }
    validate_equality(&tp)?;
    Ok(tp)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rml_syntax::parse_program;

    fn infer(src: &str) -> TProgram {
        infer_program(&parse_program(src).unwrap()).unwrap()
    }

    fn scheme_of<'a>(p: &'a TProgram, name: &str) -> &'a Scheme {
        let n = Symbol::intern(name);
        for b in &p.binds {
            match b {
                TBind::Val { name, scheme, .. } if *name == n => return scheme,
                TBind::Fun(fs) => {
                    for f in fs {
                        if f.name == n {
                            return &f.scheme;
                        }
                    }
                }
                _ => {}
            }
        }
        panic!("no binding {name}")
    }

    #[test]
    fn identity_is_polymorphic() {
        let p = infer("fun id x = x");
        let s = scheme_of(&p, "id");
        assert_eq!(s.vars.len(), 1);
        let Ty::Arrow(a, b) = &s.body else { panic!() };
        assert_eq!(a, b);
    }

    #[test]
    fn compose_has_three_tyvars() {
        let p = infer("fun compose (f, g) = fn a => f (g a)");
        let s = scheme_of(&p, "compose");
        assert_eq!(s.vars.len(), 3);
    }

    #[test]
    fn fib_is_int_to_int() {
        let p = infer("fun fib n = if n < 2 then n else fib (n - 1) + fib (n - 2)");
        let s = scheme_of(&p, "fib");
        assert_eq!(s.vars.len(), 0);
        assert_eq!(s.body, Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Int)));
    }

    #[test]
    fn value_restriction_blocks_generalisation() {
        let p = infer("val r = ref nil");
        let s = scheme_of(&p, "r");
        assert_eq!(s.vars.len(), 0);
    }

    #[test]
    fn mutual_recursion() {
        let p = infer(
            "fun even n = if n = 0 then true else odd (n - 1) \
             and odd n = if n = 0 then false else even (n - 1)",
        );
        assert_eq!(
            scheme_of(&p, "even").body,
            Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Bool))
        );
        assert_eq!(
            scheme_of(&p, "odd").body,
            Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Bool))
        );
    }

    #[test]
    fn map_scheme() {
        let p = infer("fun map f xs = case xs of nil => nil | h :: t => f h :: map f t");
        let s = scheme_of(&p, "map");
        assert_eq!(s.vars.len(), 2);
    }

    #[test]
    fn instantiations_are_recorded() {
        let p = infer("fun id x = x  val y = id 7");
        let TBind::Val { rhs, .. } = &p.binds[1] else {
            panic!()
        };
        let TExprKind::App(f, _) = &rhs.kind else {
            panic!()
        };
        let TExprKind::Var { inst, .. } = &f.kind else {
            panic!()
        };
        assert_eq!(inst.as_deref(), Some(&[Ty::Int][..]));
    }

    #[test]
    fn recursive_occurrence_is_monomorphic() {
        let p = infer("fun loop x = loop x");
        let TBind::Fun(fs) = &p.binds[0] else {
            panic!()
        };
        let TExprKind::App(f, _) = &fs[0].body.kind else {
            panic!()
        };
        let TExprKind::Var { inst, .. } = &f.kind else {
            panic!()
        };
        assert!(inst.is_none());
    }

    #[test]
    fn spurious_app_shape_from_the_paper() {
        // Section 4.2: algorithm W gives `app` the scheme
        // ∀'a 'b. ('a -> 'b) -> 'a list -> unit.
        let p = infer(
            "fun app f = let fun loop xs = case xs of nil => () | x :: r => (f x; loop r) in loop end",
        );
        let s = scheme_of(&p, "app");
        assert_eq!(s.vars.len(), 2, "scheme: {s}");
    }

    #[test]
    fn annotation_removes_spurious_tyvar() {
        let p = infer(
            "fun app (f : 'a -> unit) = let fun loop xs = case xs of nil => () | x :: r => (f x; loop r) in loop end",
        );
        let s = scheme_of(&p, "app");
        assert_eq!(s.vars.len(), 1, "scheme: {s}");
    }

    #[test]
    fn exceptions_type_check() {
        let p = infer(
            "exception E of string \
             fun f x = if x then raise (E \"boom\") else 1 \
             val g = fn x => f x handle E s => size s",
        );
        assert_eq!(p.binds.len(), 3);
    }

    #[test]
    fn exception_with_scoped_tyvar() {
        // Section 4.4 example: a local exception whose argument type is a
        // type variable of the enclosing function.
        let p =
            infer("fun f (x : 'a) = let exception E of 'a in (raise (E x)) handle E y => y end");
        let s = scheme_of(&p, "f");
        assert_eq!(s.vars.len(), 1);
        let Ty::Arrow(a, b) = &s.body else { panic!() };
        assert_eq!(a, b);
    }

    #[test]
    fn builtins_work_as_values_and_applications() {
        let p = infer("val a = print \"hi\" val b = fn () => itos 3 val c = size");
        let s = scheme_of(&p, "c");
        assert_eq!(s.body, Ty::Arrow(Box::new(Ty::Str), Box::new(Ty::Int)));
        let _ = p;
    }

    #[test]
    fn unbound_variable_errors() {
        let p = parse_program("val x = nope").unwrap();
        let e = infer_program(&p).unwrap_err();
        assert!(e.msg.contains("unbound"));
    }

    #[test]
    fn unification_clash_errors() {
        let p = parse_program("val x = 1 + \"two\"").unwrap();
        assert!(infer_program(&p).is_err());
    }

    #[test]
    fn equality_on_functions_rejected() {
        let p = parse_program("val b = (fn x => x) = (fn y => y)").unwrap();
        let e = infer_program(&p).unwrap_err();
        assert!(e.msg.contains("equality"));
    }

    #[test]
    fn occurs_check_rejects_self_application() {
        let p = parse_program("fun w x = x x").unwrap();
        assert!(infer_program(&p).is_err());
    }

    #[test]
    fn shadowing_builtin() {
        let p = infer("fun print x = x  val y = print 3");
        let s = scheme_of(&p, "y");
        assert_eq!(s.body, Ty::Int);
    }

    #[test]
    fn nested_scheme_shares_outer_quant() {
        // g's 'a occurs in the inner function h's environment; h quantifies
        // only its own variable.
        let p = infer("fun g (f : unit -> 'a) = let fun h x = (f (), x) in h end");
        let s = scheme_of(&p, "g");
        assert_eq!(s.vars.len(), 2, "scheme: {s}");
    }

    #[test]
    fn figure1_types() {
        let p = infer(
            "fun compose (f, g) = fn a => f (g a) \
             fun run () = \
               let val h = compose (fn x => (), fn () => \"oh\" ^ \"no\") \
                   val u = forcegc () \
               in h () end",
        );
        let s = scheme_of(&p, "run");
        assert_eq!(s.body, Ty::Arrow(Box::new(Ty::Unit), Box::new(Ty::Unit)));
    }

    #[test]
    fn seq_allows_any_first_type() {
        let p = infer("val a = (1; \"x\"; true)");
        assert_eq!(scheme_of(&p, "a").body, Ty::Bool);
    }

    #[test]
    fn handle_arg_of_nullary_exception_is_unit() {
        let p = infer("exception E val a = (raise E) handle E u => 3");
        assert_eq!(scheme_of(&p, "a").body, Ty::Int);
    }

    #[test]
    fn polymorphic_equality_allowed_on_lists() {
        let p = infer("fun eqlist (a, b) = a = b val t = eqlist ([1], [1])");
        let s = scheme_of(&p, "eqlist");
        assert_eq!(s.vars.len(), 1, "{s}");
    }

    #[test]
    fn deeply_curried_functions() {
        let p = infer("fun f a b c d = a + b + c + d val r = f 1 2 3 4");
        assert_eq!(scheme_of(&p, "r").body, Ty::Int);
    }

    #[test]
    fn let_shadowing_types_correctly() {
        let p = infer("val x = 1 val x = \"s\" val y = size x");
        assert_eq!(scheme_of(&p, "y").body, Ty::Int);
    }

    #[test]
    fn ref_types_flow_through_assignment() {
        let p = infer("val r = ref 0 val u = r := 5 val v = !r + 1");
        assert_eq!(scheme_of(&p, "v").body, Ty::Int);
    }

    #[test]
    fn case_binder_shadows_outer() {
        let p = infer(
            "val h = 100 \
             fun first xs = case xs of nil => 0 | h :: t => h \
             val r = first [7]",
        );
        assert_eq!(scheme_of(&p, "r").body, Ty::Int);
    }

    #[test]
    fn figure8_types() {
        let p = infer(
            "fun compose (f, g) = fn a => f (g a) \
             fun g (f : unit -> 'a) : unit -> unit = \
               compose (let val x = f () in (fn x => (), fn () => x) end) \
             val h = g (fn () => \"oh\" ^ \"no\")",
        );
        let s = scheme_of(&p, "g");
        assert_eq!(s.vars.len(), 1, "scheme: {s}");
    }
}
