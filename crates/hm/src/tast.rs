//! The typed abstract syntax tree produced by inference.
//!
//! Every node carries its (fully zonked) type; bindings carry schemes; and
//! polymorphic variable occurrences record the types instantiated for the
//! quantified variables of the scheme they refer to. Occurrences of
//! bindings that are still being inferred (recursive calls inside a `fun`
//! group) record `inst: None`: they are type-monomorphic, which is exactly
//! the treatment the paper's rule for recursive functions requires
//! (region-polymorphic but type-monomorphic recursion).

use crate::types::{Scheme, Ty};
use rml_session::Span;
use rml_syntax::ast::PrimOp;
use rml_syntax::Symbol;

/// A typed program.
#[derive(Debug, Clone, PartialEq)]
pub struct TProgram {
    /// Top-level bindings in source order.
    pub binds: Vec<TBind>,
}

/// A typed binding.
#[derive(Debug, Clone, PartialEq)]
pub enum TBind {
    /// `val x = e`, generalised when the right-hand side is a syntactic
    /// value (SML value restriction).
    Val {
        /// Bound name.
        name: Symbol,
        /// The binding's scheme.
        scheme: Scheme,
        /// Right-hand side.
        rhs: TExpr,
    },
    /// A group of mutually recursive functions.
    Fun(Vec<TFunBind>),
    /// `exception E of ty`. The argument type may mention `Quant` variables
    /// of an enclosing function's scheme (scoped type variables) — the
    /// situation of the paper's Section 4.4.
    Exception {
        /// Constructor name.
        name: Symbol,
        /// Argument type, if declared with `of ty`.
        arg: Option<Ty>,
    },
}

/// One function of a `fun` group. Multi-parameter functions have been
/// curried: `param` is the first parameter, extra parameters appear as
/// nested lambdas in `body`.
#[derive(Debug, Clone, PartialEq)]
pub struct TFunBind {
    /// Function name.
    pub name: Symbol,
    /// The function's generalised scheme (an arrow type).
    pub scheme: Scheme,
    /// First parameter.
    pub param: Symbol,
    /// Type of the first parameter.
    pub param_ty: Ty,
    /// Body (with remaining parameters as lambdas).
    pub body: TExpr,
    /// Span of the function's name in the source ([`Span::DUMMY`] when
    /// synthesised).
    pub span: Span,
}

/// A typed expression.
#[derive(Debug, Clone, PartialEq)]
pub struct TExpr {
    /// The node's type.
    pub ty: Ty,
    /// Span of the source expression this node was elaborated from
    /// ([`Span::DUMMY`] for synthesised nodes such as eta-expansions).
    pub span: Span,
    /// The node proper.
    pub kind: TExprKind,
}

/// Typed expression variants.
#[derive(Debug, Clone, PartialEq)]
pub enum TExprKind {
    /// `()`
    Unit,
    /// Integer literal.
    Int(i64),
    /// String literal.
    Str(String),
    /// Boolean literal.
    Bool(bool),
    /// Variable occurrence. `inst` records the instantiation of the
    /// binding's scheme (`None` for monomorphic/recursive occurrences).
    Var {
        /// The variable.
        name: Symbol,
        /// Types instantiated for the scheme's quantified variables.
        inst: Option<Vec<Ty>>,
    },
    /// Lambda.
    Lam {
        /// Parameter.
        param: Symbol,
        /// Parameter type.
        param_ty: Ty,
        /// Body.
        body: Box<TExpr>,
    },
    /// Application.
    App(Box<TExpr>, Box<TExpr>),
    /// `let` with typed bindings.
    Let {
        /// Bindings.
        binds: Vec<TBind>,
        /// Body.
        body: Box<TExpr>,
    },
    /// Pair.
    Pair(Box<TExpr>, Box<TExpr>),
    /// Projection (1 or 2).
    Sel(u8, Box<TExpr>),
    /// Conditional.
    If(Box<TExpr>, Box<TExpr>, Box<TExpr>),
    /// Primitive application.
    Prim(PrimOp, Vec<TExpr>),
    /// `nil`.
    Nil,
    /// `h :: t`.
    Cons(Box<TExpr>, Box<TExpr>),
    /// List case.
    CaseList {
        /// Scrutinee.
        scrut: Box<TExpr>,
        /// `nil` branch.
        nil_rhs: Box<TExpr>,
        /// Cons-branch head binder.
        head: Symbol,
        /// Cons-branch tail binder.
        tail: Symbol,
        /// Cons branch.
        cons_rhs: Box<TExpr>,
    },
    /// `ref e`.
    Ref(Box<TExpr>),
    /// `!e`.
    Deref(Box<TExpr>),
    /// `e := e`.
    Assign(Box<TExpr>, Box<TExpr>),
    /// Sequencing.
    Seq(Box<TExpr>, Box<TExpr>),
    /// `raise e`.
    Raise(Box<TExpr>),
    /// `e handle E x => e'`.
    Handle {
        /// Protected expression.
        body: Box<TExpr>,
        /// Caught constructor.
        exn: Symbol,
        /// Argument binder.
        arg: Symbol,
        /// Type of the bound argument (`unit` for nullary exceptions).
        arg_ty: Ty,
        /// Handler.
        handler: Box<TExpr>,
    },
    /// Exception-constructor application; `arg` is `None` for nullary
    /// constructors. The node's type is `exn`.
    ConApp {
        /// Constructor name.
        exn: Symbol,
        /// Argument, if any.
        arg: Option<Box<TExpr>>,
    },
}

impl TExpr {
    /// Calls `f` on every node of the tree (pre-order).
    pub fn walk<F: FnMut(&TExpr)>(&self, f: &mut F) {
        f(self);
        match &self.kind {
            TExprKind::Unit
            | TExprKind::Int(_)
            | TExprKind::Str(_)
            | TExprKind::Bool(_)
            | TExprKind::Var { .. }
            | TExprKind::Nil => {}
            TExprKind::Lam { body, .. } => body.walk(f),
            TExprKind::App(a, b)
            | TExprKind::Pair(a, b)
            | TExprKind::Cons(a, b)
            | TExprKind::Assign(a, b)
            | TExprKind::Seq(a, b) => {
                a.walk(f);
                b.walk(f);
            }
            TExprKind::Let { binds, body } => {
                for b in binds {
                    match b {
                        TBind::Val { rhs, .. } => rhs.walk(f),
                        TBind::Fun(fs) => {
                            for fb in fs {
                                fb.body.walk(f);
                            }
                        }
                        TBind::Exception { .. } => {}
                    }
                }
                body.walk(f);
            }
            TExprKind::Sel(_, e)
            | TExprKind::Ref(e)
            | TExprKind::Deref(e)
            | TExprKind::Raise(e) => e.walk(f),
            TExprKind::If(a, b, c) => {
                a.walk(f);
                b.walk(f);
                c.walk(f);
            }
            TExprKind::Prim(_, args) => {
                for a in args {
                    a.walk(f);
                }
            }
            TExprKind::CaseList {
                scrut,
                nil_rhs,
                cons_rhs,
                ..
            } => {
                scrut.walk(f);
                nil_rhs.walk(f);
                cons_rhs.walk(f);
            }
            TExprKind::Handle { body, handler, .. } => {
                body.walk(f);
                handler.walk(f);
            }
            TExprKind::ConApp { arg, .. } => {
                if let Some(a) = arg {
                    a.walk(f);
                }
            }
        }
    }
}

impl TProgram {
    /// Calls `f` on every expression node in the program.
    pub fn walk<F: FnMut(&TExpr)>(&self, f: &mut F) {
        for b in &self.binds {
            match b {
                TBind::Val { rhs, .. } => rhs.walk(f),
                TBind::Fun(fs) => {
                    for fb in fs {
                        fb.body.walk(f);
                    }
                }
                TBind::Exception { .. } => {}
            }
        }
    }
}
