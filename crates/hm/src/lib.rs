//! Hindley–Milner type inference for the `rml` source language.
//!
//! This crate implements algorithm W with SML's value restriction and
//! produces a fully resolved *typed AST* ([`tast::TProgram`]) in which
//!
//! * every expression node carries its type,
//! * every `let`/`fun` binding carries its type scheme, and
//! * every polymorphic variable occurrence records the types instantiated
//!   for the scheme's quantified type variables.
//!
//! The instantiation records are what region inference (crate `rml-infer`)
//! later uses to implement the paper's *substitution coverage* (`Ω ⊢ S : ∆`)
//! and to detect *spurious* type variables — type variables that occur free
//! in the type of an identifier captured by a function but not in the type
//! of the function itself (Section 4 of the paper).
//!
//! # Example
//!
//! ```
//! let prog = rml_syntax::parse_program("fun id x = x  val y = id 7").unwrap();
//! let typed = rml_hm::infer_program(&prog).unwrap();
//! assert_eq!(typed.binds.len(), 2);
//! ```

pub mod infer;
pub mod tast;
pub mod types;

pub use infer::{infer_program, TypeError};
pub use tast::{TBind, TExpr, TExprKind, TFunBind, TProgram};
pub use types::{Scheme, Ty};
