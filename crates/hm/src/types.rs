//! ML types, type schemes, and the unification store.

use std::collections::BTreeSet;
use std::fmt;

/// A monomorphic ML type.
///
/// `Meta` variables are unification variables resolved through a
/// [`TyStore`]; `Quant` variables are bound by an enclosing [`Scheme`].
/// After the final zonk pass no `Meta` remains in a typed AST.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Ty {
    /// Unification variable.
    Meta(u32),
    /// Scheme-bound (quantified) type variable, identified by its index in
    /// the binding scheme's `vars` list.
    Quant(u32),
    /// `int`
    Int,
    /// `string`
    Str,
    /// `bool`
    Bool,
    /// `unit`
    Unit,
    /// `exn`
    Exn,
    /// `τ1 * τ2`
    Pair(Box<Ty>, Box<Ty>),
    /// `τ list`
    List(Box<Ty>),
    /// `τ ref`
    Ref(Box<Ty>),
    /// `τ1 -> τ2`
    Arrow(Box<Ty>, Box<Ty>),
}

impl Ty {
    /// Returns `true` if the type contains an arrow anywhere (used to
    /// reject equality on functions).
    pub fn contains_arrow(&self) -> bool {
        match self {
            Ty::Arrow(..) => true,
            Ty::Pair(a, b) => a.contains_arrow() || b.contains_arrow(),
            Ty::List(t) | Ty::Ref(t) => t.contains_arrow(),
            _ => false,
        }
    }

    /// Collects the `Quant` indices occurring in the type.
    pub fn quant_vars(&self, out: &mut BTreeSet<u32>) {
        match self {
            Ty::Quant(q) => {
                out.insert(*q);
            }
            Ty::Pair(a, b) | Ty::Arrow(a, b) => {
                a.quant_vars(out);
                b.quant_vars(out);
            }
            Ty::List(t) | Ty::Ref(t) => t.quant_vars(out),
            _ => {}
        }
    }

    /// Returns `true` if the type is "boxed" in the runtime representation
    /// (pairs, lists, refs, arrows, strings); type variables count as
    /// potentially boxed.
    pub fn is_boxed(&self) -> bool {
        matches!(
            self,
            Ty::Pair(..) | Ty::List(_) | Ty::Ref(_) | Ty::Arrow(..) | Ty::Str | Ty::Quant(_)
        )
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(t: &Ty, prec: u8, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match t {
                Ty::Meta(m) => write!(f, "?{m}"),
                Ty::Quant(q) => {
                    // 'a, 'b, ... for the first 26, then 'a26 etc.
                    let c = (b'a' + (q % 26) as u8) as char;
                    if *q < 26 {
                        write!(f, "'{c}")
                    } else {
                        write!(f, "'{c}{q}")
                    }
                }
                Ty::Int => write!(f, "int"),
                Ty::Str => write!(f, "string"),
                Ty::Bool => write!(f, "bool"),
                Ty::Unit => write!(f, "unit"),
                Ty::Exn => write!(f, "exn"),
                Ty::Pair(a, b) => {
                    if prec > 1 {
                        write!(f, "(")?;
                    }
                    go(a, 2, f)?;
                    write!(f, " * ")?;
                    go(b, 1, f)?;
                    if prec > 1 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
                Ty::List(e) => {
                    go(e, 3, f)?;
                    write!(f, " list")
                }
                Ty::Ref(e) => {
                    go(e, 3, f)?;
                    write!(f, " ref")
                }
                Ty::Arrow(a, b) => {
                    if prec > 0 {
                        write!(f, "(")?;
                    }
                    go(a, 1, f)?;
                    write!(f, " -> ")?;
                    go(b, 0, f)?;
                    if prec > 0 {
                        write!(f, ")")?;
                    }
                    Ok(())
                }
            }
        }
        go(self, 0, f)
    }
}

/// A type scheme `∀α1...αn. τ`.
///
/// Quantified type variables are identified by **globally unique** ids
/// (allocated once per generalisation), so the `Quant` nodes of enclosing
/// schemes can appear free in the body of a nested scheme without clashing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Scheme {
    /// The ids of the quantified type variables, in instantiation order.
    pub vars: Vec<u32>,
    /// The scheme body.
    pub body: Ty,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: Ty) -> Scheme {
        Scheme {
            vars: Vec::new(),
            body: ty,
        }
    }

    /// Substitutes `args[i]` for `Quant(vars[i])` in the body. Quantified
    /// variables of enclosing schemes are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `args.len() != self.vars.len()`.
    pub fn apply(&self, args: &[Ty]) -> Ty {
        assert_eq!(args.len(), self.vars.len(), "scheme arity mismatch");
        let map: Vec<(u32, &Ty)> = self.vars.iter().copied().zip(args.iter()).collect();
        subst_quant(&self.body, &map)
    }
}

/// Replaces `Quant(id)` with the type paired with `id` in `map`.
pub fn subst_quant(t: &Ty, map: &[(u32, &Ty)]) -> Ty {
    match t {
        Ty::Quant(q) => map
            .iter()
            .find(|(id, _)| id == q)
            .map(|(_, ty)| (*ty).clone())
            .unwrap_or_else(|| t.clone()),
        Ty::Pair(a, b) => Ty::Pair(Box::new(subst_quant(a, map)), Box::new(subst_quant(b, map))),
        Ty::Arrow(a, b) => Ty::Arrow(Box::new(subst_quant(a, map)), Box::new(subst_quant(b, map))),
        Ty::List(e) => Ty::List(Box::new(subst_quant(e, map))),
        Ty::Ref(e) => Ty::Ref(Box::new(subst_quant(e, map))),
        other => other.clone(),
    }
}

impl fmt::Display for Scheme {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if !self.vars.is_empty() {
            write!(f, "∀")?;
            for v in &self.vars {
                write!(f, "{}", Ty::Quant(*v))?;
            }
            write!(f, ". ")?;
        }
        write!(f, "{}", self.body)
    }
}

/// The unification store: a map from `Meta` variables to their bindings.
#[derive(Debug, Default)]
pub struct TyStore {
    bindings: Vec<Option<Ty>>,
}

impl TyStore {
    /// Creates an empty store.
    pub fn new() -> TyStore {
        TyStore::default()
    }

    /// Allocates a fresh unification variable.
    pub fn fresh(&mut self) -> Ty {
        self.bindings.push(None);
        Ty::Meta(self.bindings.len() as u32 - 1)
    }

    /// Follows bindings until reaching an unbound meta or a constructor.
    /// Only resolves the head; use [`TyStore::zonk_default`] for deep resolution.
    pub fn prune(&self, t: &Ty) -> Ty {
        let mut t = t.clone();
        while let Ty::Meta(m) = t {
            match &self.bindings[m as usize] {
                Some(b) => t = b.clone(),
                None => break,
            }
        }
        t
    }

    /// Fully resolves a type; unresolved metas default to `default`.
    pub fn zonk_default(&self, t: &Ty, default: &Ty) -> Ty {
        let t = self.prune(t);
        match t {
            Ty::Meta(_) => default.clone(),
            Ty::Pair(a, b) => Ty::Pair(
                Box::new(self.zonk_default(&a, default)),
                Box::new(self.zonk_default(&b, default)),
            ),
            Ty::Arrow(a, b) => Ty::Arrow(
                Box::new(self.zonk_default(&a, default)),
                Box::new(self.zonk_default(&b, default)),
            ),
            Ty::List(e) => Ty::List(Box::new(self.zonk_default(&e, default))),
            Ty::Ref(e) => Ty::Ref(Box::new(self.zonk_default(&e, default))),
            other => other,
        }
    }

    /// Fully resolves a type, mapping unresolved metas through `f` (used by
    /// generalisation to turn them into `Quant` variables).
    pub fn zonk_with<F: FnMut(u32) -> Ty>(&self, t: &Ty, f: &mut F) -> Ty {
        let t = self.prune(t);
        match t {
            Ty::Meta(m) => f(m),
            Ty::Pair(a, b) => Ty::Pair(
                Box::new(self.zonk_with(&a, f)),
                Box::new(self.zonk_with(&b, f)),
            ),
            Ty::Arrow(a, b) => Ty::Arrow(
                Box::new(self.zonk_with(&a, f)),
                Box::new(self.zonk_with(&b, f)),
            ),
            Ty::List(e) => Ty::List(Box::new(self.zonk_with(&e, f))),
            Ty::Ref(e) => Ty::Ref(Box::new(self.zonk_with(&e, f))),
            other => other,
        }
    }

    /// Collects the unresolved metas in `t` into `out`.
    pub fn free_metas(&self, t: &Ty, out: &mut BTreeSet<u32>) {
        match self.prune(t) {
            Ty::Meta(m) => {
                out.insert(m);
            }
            Ty::Pair(a, b) | Ty::Arrow(a, b) => {
                self.free_metas(&a, out);
                self.free_metas(&b, out);
            }
            Ty::List(e) | Ty::Ref(e) => self.free_metas(&e, out),
            _ => {}
        }
    }

    /// Occurs check: does unbound meta `m` occur in `t`?
    fn occurs(&self, m: u32, t: &Ty) -> bool {
        match self.prune(t) {
            Ty::Meta(m2) => m == m2,
            Ty::Pair(a, b) | Ty::Arrow(a, b) => self.occurs(m, &a) || self.occurs(m, &b),
            Ty::List(e) | Ty::Ref(e) => self.occurs(m, &e),
            _ => false,
        }
    }

    /// Unifies two types.
    ///
    /// # Errors
    ///
    /// Returns a pair of the (pruned) mismatching types on constructor
    /// clash or occurs-check failure.
    pub fn unify(&mut self, a: &Ty, b: &Ty) -> Result<(), (Ty, Ty)> {
        let a = self.prune(a);
        let b = self.prune(b);
        match (&a, &b) {
            (Ty::Meta(m), Ty::Meta(n)) if m == n => Ok(()),
            (Ty::Meta(m), _) => {
                if self.occurs(*m, &b) {
                    return Err((a, b));
                }
                self.bindings[*m as usize] = Some(b);
                Ok(())
            }
            (_, Ty::Meta(_)) => self.unify(&b, &a),
            (Ty::Int, Ty::Int)
            | (Ty::Str, Ty::Str)
            | (Ty::Bool, Ty::Bool)
            | (Ty::Unit, Ty::Unit)
            | (Ty::Exn, Ty::Exn) => Ok(()),
            (Ty::Quant(p), Ty::Quant(q)) if p == q => Ok(()),
            (Ty::Pair(a1, a2), Ty::Pair(b1, b2)) | (Ty::Arrow(a1, a2), Ty::Arrow(b1, b2)) => {
                self.unify(a1, b1)?;
                self.unify(a2, b2)
            }
            (Ty::List(x), Ty::List(y)) | (Ty::Ref(x), Ty::Ref(y)) => self.unify(x, y),
            _ => Err((a, b)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unify_metas_and_constructors() {
        let mut st = TyStore::new();
        let m = st.fresh();
        st.unify(&m, &Ty::Int).unwrap();
        assert_eq!(st.prune(&m), Ty::Int);
    }

    #[test]
    fn unify_through_structure() {
        let mut st = TyStore::new();
        let m = st.fresh();
        let n = st.fresh();
        let a = Ty::Arrow(Box::new(m.clone()), Box::new(Ty::Bool));
        let b = Ty::Arrow(Box::new(Ty::Int), Box::new(n.clone()));
        st.unify(&a, &b).unwrap();
        assert_eq!(st.prune(&m), Ty::Int);
        assert_eq!(st.prune(&n), Ty::Bool);
    }

    #[test]
    fn occurs_check_fails() {
        let mut st = TyStore::new();
        let m = st.fresh();
        let l = Ty::List(Box::new(m.clone()));
        assert!(st.unify(&m, &l).is_err());
    }

    #[test]
    fn clash_fails() {
        let mut st = TyStore::new();
        assert!(st.unify(&Ty::Int, &Ty::Bool).is_err());
    }

    #[test]
    fn scheme_apply() {
        let s = Scheme {
            vars: vec![7, 9],
            body: Ty::Arrow(Box::new(Ty::Quant(7)), Box::new(Ty::Quant(9))),
        };
        let t = s.apply(&[Ty::Int, Ty::Bool]);
        assert_eq!(t, Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Bool)));
    }

    #[test]
    fn scheme_apply_leaves_outer_quants() {
        let s = Scheme {
            vars: vec![1],
            body: Ty::Pair(Box::new(Ty::Quant(1)), Box::new(Ty::Quant(0))),
        };
        let t = s.apply(&[Ty::Int]);
        assert_eq!(t, Ty::Pair(Box::new(Ty::Int), Box::new(Ty::Quant(0))));
    }

    #[test]
    fn display_types() {
        let t = Ty::Arrow(
            Box::new(Ty::Pair(Box::new(Ty::Int), Box::new(Ty::Quant(0)))),
            Box::new(Ty::List(Box::new(Ty::Str))),
        );
        assert_eq!(t.to_string(), "int * 'a -> string list");
    }

    #[test]
    fn zonk_defaults_unresolved() {
        let mut st = TyStore::new();
        let m = st.fresh();
        let t = Ty::List(Box::new(m));
        assert_eq!(st.zonk_default(&t, &Ty::Unit), Ty::List(Box::new(Ty::Unit)));
    }

    #[test]
    fn contains_arrow() {
        assert!(Ty::Pair(
            Box::new(Ty::Int),
            Box::new(Ty::Arrow(Box::new(Ty::Int), Box::new(Ty::Int)))
        )
        .contains_arrow());
        assert!(!Ty::List(Box::new(Ty::Int)).contains_arrow());
    }
}
