//! The paper's headline demonstration (Figures 1 and 2): the program that
//! breaks the pre-paper combination of region inference and tracing
//! garbage collection.
//!
//! The composition `compose (fn y => (), fn () => x)` captures the *dead*
//! string `x` inside the closure `h`. Region inference without spurious
//! type variables (`rg-`) deallocates the string's region right after `h`
//! is built (Figure 2(a)); the forced collection then traces `h` and finds
//! a pointer into freed memory. The paper's system (`rg`) forces the
//! region into `h`'s latent effect via the type variable context
//! (Figure 2(b)), and the collection is safe.
//!
//! ```sh
//! cargo run --example unsoundness
//! ```

use rml::{check, compile, execute, ExecOpts, Strategy};

const FIGURE1: &str = r#"
fun compose (f, g) = fn a => f (g a)
fun run () =
  let val h = compose (let val x = "oh" ^ "no" in (fn y => (), fn () => x) end)
      val u = forcegc ()
  in h () end
fun main () = run ()
"#;

fn main() {
    println!("The program of Figure 1:\n{FIGURE1}");

    for strategy in [Strategy::Rg, Strategy::RgMinus, Strategy::R] {
        println!("── strategy {strategy:?} ──");
        let c = compile(FIGURE1, strategy).expect("compilation failed");

        // Static view: does the output satisfy the paper's G relation?
        let full_checker = rml_core::Checker {
            exns: c.output.exns.clone(),
            gc: rml_core::typing::GcCheck::Full,
            store: vec![],
        };
        match full_checker.check(&rml_core::TypeEnv::default(), &c.output.term) {
            Ok(_) => println!("  Figure 4 check (full G): PASSES"),
            Err(e) => println!("  Figure 4 check (full G): FAILS\n    {e}"),
        }
        // Does it satisfy its own (possibly weaker) discipline?
        match check(&c) {
            Ok(_) => println!("  own discipline: consistent"),
            Err(e) => println!("  own discipline: VIOLATED — {e}"),
        }

        // Dynamic view: run it with the tracing collector (except for r).
        match execute(&c, &ExecOpts::default()) {
            Ok(out) => println!(
                "  execution: OK (result {}, {} collections)\n",
                out.value, out.stats.gc_count
            ),
            Err(e) => println!("  execution: CRASHED — {e}\n"),
        }
    }

    println!("Summary: rg runs safely, rg- is statically rejected by the full");
    println!("G relation AND dynamically crashes the collector, and r survives");
    println!("only because it never traces (dangling pointers are permitted).");
}
