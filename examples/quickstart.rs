//! Quickstart: compile an ML program through region inference, inspect
//! the inferred region type schemes, validate it against the paper's
//! typing rules, and run it on the region heap with the tracing collector.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rml::{check, compile, execute, ExecOpts, Strategy};

fn main() {
    let src = r#"
        fun compose (f, g) = fn a => f (g a)
        fun map f xs = case xs of nil => nil | h :: t => f h :: map f t
        fun sum xs = case xs of nil => 0 | h :: t => h + sum t
        fun main () =
          let val add3 = compose (fn x => x + 1, fn x => x + 2)
          in sum (map add3 [1, 2, 3, 4]) end
    "#;

    // Compile with the paper's GC-safe strategy (rg).
    let compiled = compile(src, Strategy::Rg).expect("compilation failed");

    println!("== inferred region type schemes ==");
    for (name, scheme) in &compiled.output.schemes {
        println!("  {name} : {}", rml_core::pretty::scheme_to_string(scheme));
    }

    println!("\n== spurious type variables (the paper's key notion) ==");
    println!(
        "  {} of {} functions are spurious: {:?}",
        compiled.output.stats.spurious_fns,
        compiled.output.stats.total_fns,
        compiled.output.stats.spurious_fn_names
    );

    // Validate against the Figure 4 typing rules with the full G relation.
    check(&compiled).expect("the rg output must be GC-safe");
    println!("\n== Figure 4 check: passed (no dangling pointers possible) ==");

    // Run on the region heap.
    let out = execute(&compiled, &ExecOpts::default()).expect("run failed");
    println!("\n== execution ==");
    println!("  result        : {}", out.value);
    println!("  machine steps : {}", out.steps);
    println!("  allocated     : {} bytes", out.stats.bytes_allocated);
    println!("  peak RSS      : {} bytes", out.stats.peak_bytes());
    println!("  regions       : {} created", out.stats.regions_created);
    println!("  collections   : {}", out.stats.gc_count);
}
