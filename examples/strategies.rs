//! Compares the paper's compilation strategies on one benchmark: `rg`
//! (regions + GC, this paper), `rg-` (regions + GC without spurious type
//! variables — unsound in general), `r` (regions only), and the
//! regionless tracing-GC baseline.
//!
//! ```sh
//! cargo run --release --example strategies [program]
//! ```

use rml::{compile_with_basis, execute, programs, ExecOpts, Strategy};
use std::time::Instant;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "msort".into());
    let prog = programs::by_name(&name).unwrap_or_else(|| {
        panic!(
            "unknown program `{name}`; try one of {:?}",
            programs::suite().iter().map(|p| p.name).collect::<Vec<_>>()
        )
    });
    println!("benchmark `{}` ({} loc)\n", prog.name, prog.loc());
    println!(
        "{:<10} {:>10} {:>12} {:>12} {:>8} {:>9}",
        "strategy", "time", "alloc", "peak rss", "gc #", "regions"
    );
    let mut rows: Vec<(&str, Strategy, bool)> = vec![
        ("rg", Strategy::Rg, false),
        ("rg-", Strategy::RgMinus, false),
        ("r", Strategy::R, false),
        ("baseline", Strategy::Rg, true),
    ];
    for (label, strategy, baseline) in rows.drain(..) {
        let c = compile_with_basis(prog.source, strategy).expect("compile");
        let opts = ExecOpts {
            baseline,
            ..ExecOpts::default()
        };
        let t0 = Instant::now();
        match execute(&c, &opts) {
            Ok(out) => println!(
                "{:<10} {:>8.2?} {:>11}B {:>11}B {:>8} {:>9}",
                label,
                t0.elapsed(),
                out.stats.bytes_allocated,
                out.stats.peak_bytes(),
                out.stats.gc_count,
                out.stats.regions_created,
            ),
            Err(e) => println!("{label:<10} CRASH: {e}"),
        }
    }
}
