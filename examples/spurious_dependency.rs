//! Section 4.3 / Figure 8: tracking spurious type-variable dependencies.
//!
//! `g`'s type variable `'a` never appears in the type of a captured
//! variable directly — it becomes spurious because it is *instantiated
//! for* `compose`'s spurious `γ`. The inferred scheme for `g` associates
//! `'a` with an arrow effect whose handle occurs in the effect of the
//! returned function, which rightfully forces the string `"ohno"` into a
//! region that outlives `h`.
//!
//! ```sh
//! cargo run --example spurious_dependency
//! ```

use rml::{compile, execute, ExecOpts, Strategy};

const FIGURE8: &str = r#"
fun compose (f, g) = fn a => f (g a)
fun g (f : unit -> 'a) : unit -> unit =
  compose (let val x = f () in (fn x => (), fn () => x) end)
val h = g (fn () => "oh" ^ "no")
fun main () = h ()
"#;

fn main() {
    println!("The program of Figure 8:\n{FIGURE8}");
    let c = compile(FIGURE8, Strategy::Rg).expect("compilation failed");

    println!("== inferred schemes ==");
    for (name, scheme) in &c.output.schemes {
        println!("  {name} : {}", rml_core::pretty::scheme_to_string(scheme));
        let spurious: Vec<_> = scheme
            .delta
            .iter()
            .map(|(a, ae)| format!("{a} : {ae}"))
            .collect();
        if !spurious.is_empty() {
            println!("      ∆ = {{ {} }}", spurious.join(", "));
        }
    }

    println!(
        "\nspurious functions: {:?} (γ of compose directly; 'a of g transitively)",
        c.output.stats.spurious_fn_names
    );

    rml::check(&c).expect("GC-safe");
    let out = execute(&c, &ExecOpts::default()).expect("run failed");
    println!(
        "\nresult: {} after {} collections — safe.",
        out.value, out.stats.gc_count
    );

    println!("\nUnder rg- the same program crashes the collector:");
    let bad = compile(FIGURE8, Strategy::RgMinus).unwrap();
    match execute(&bad, &ExecOpts::default()) {
        Ok(_) => println!("  (unexpectedly survived)"),
        Err(e) => println!("  {e}"),
    }
}
