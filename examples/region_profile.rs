//! Region profiling: the static representation analyses of `rml-repr`
//! (finite/infinite classification, droppable region parameters) next to
//! the dynamic region behaviour of a run.
//!
//! ```sh
//! cargo run --example region_profile
//! ```

use rml::{compile, execute, ExecOpts, Strategy};

fn main() {
    let src = r#"
        fun double xs = case xs of nil => nil | h :: t => (2 * h) :: double t
        fun sum xs = case xs of nil => 0 | h :: t => h + sum t
        fun upto n = if n = 0 then nil else n :: upto (n - 1)
        fun main () =
          let val scratch = (1, 2)                 (* dies immediately: finite *)
              val data = double (upto 500)         (* list spine: infinite *)
          in sum data + #1 scratch end
    "#;
    let c = compile(src, Strategy::Rg).expect("compile");

    println!("== static region representation (rml-repr) ==");
    println!("  finite regions   : {}", c.repr.finite.len());
    println!("  infinite regions : {}", c.repr.infinite.len());
    println!("  letregion nodes  : {}", c.repr.allocs.letregions);
    println!("  allocation sites : {}", c.repr.allocs.alloc_sites);
    println!("  region apps      : {}", c.repr.allocs.region_apps);
    println!("  droppable region parameters per function:");
    for (f, (droppable, total)) in &c.repr.droppable {
        println!("    {f:<10} {droppable}/{total}");
    }

    let out = execute(&c, &ExecOpts::default()).expect("run");
    println!("\n== dynamic behaviour ==");
    println!("  result            : {}", out.value);
    println!("  regions created   : {}", out.stats.regions_created);
    println!("  peak live regions : {}", out.stats.peak_regions);
    println!("  bytes allocated   : {}", out.stats.bytes_allocated);
    println!("  peak RSS          : {} bytes", out.stats.peak_bytes());
    println!("  collections       : {}", out.stats.gc_count);
}
